//! The resident type-ahead buffer (level 2).
//!
//! "The keyboard input buffer is present nearly always, so that any
//! characters typed ahead by the user when running one program are saved
//! for interpretation by the next" (§5.2). The buffer lives *in simulated
//! memory*, inside the level-2 region, so it genuinely survives program
//! loads (which only touch low memory) and is genuinely lost if a program
//! does `Junta(1)`.
//!
//! Ring-buffer layout within the region: word 0 = head index, word 1 =
//! tail index, word 2 = capacity, words 3.. = data.

use alto_sim::Memory;

/// The type-ahead ring buffer over a memory region.
#[derive(Debug, Clone, Copy)]
pub struct TypeAhead {
    base: u16,
    capacity: u16,
}

impl TypeAhead {
    /// Lays out (and clears) a buffer in the region `[base, base+words)`.
    ///
    /// # Panics
    ///
    /// Panics if the region is smaller than 4 words.
    pub fn init(mem: &mut Memory, base: u16, words: u16) -> TypeAhead {
        assert!(words >= 4, "type-ahead region too small");
        let capacity = words - 3;
        mem.write(base, 0);
        mem.write(base + 1, 0);
        mem.write(base + 2, capacity);
        TypeAhead { base, capacity }
    }

    /// Attaches to an existing buffer (e.g. after `InLoad` restored the
    /// memory image; the buffer contents came along).
    pub fn attach(mem: &Memory, base: u16) -> TypeAhead {
        let capacity = mem.read(base + 2);
        TypeAhead { base, capacity }
    }

    /// Pushes a key; drops it (returning false) when the buffer is full —
    /// type-ahead overflows were simply lost on the Alto too.
    pub fn push(&self, mem: &mut Memory, key: u16) -> bool {
        let head = mem.read(self.base);
        let tail = mem.read(self.base + 1);
        let next_tail = (tail + 1) % self.capacity;
        if next_tail == head {
            return false; // full
        }
        mem.write(self.base + 3 + tail, key);
        mem.write(self.base + 1, next_tail);
        true
    }

    /// The oldest key without consuming it, if any.
    pub fn peek(&self, mem: &Memory) -> Option<u16> {
        let head = mem.read(self.base);
        let tail = mem.read(self.base + 1);
        if head == tail {
            None
        } else {
            Some(mem.read(self.base + 3 + head))
        }
    }

    /// Pops the oldest key, if any.
    pub fn pop(&self, mem: &mut Memory) -> Option<u16> {
        let head = mem.read(self.base);
        let tail = mem.read(self.base + 1);
        if head == tail {
            return None;
        }
        let key = mem.read(self.base + 3 + head);
        mem.write(self.base, (head + 1) % self.capacity);
        Some(key)
    }

    /// Number of keys waiting.
    pub fn len(&self, mem: &Memory) -> u16 {
        let head = mem.read(self.base);
        let tail = mem.read(self.base + 1);
        (tail + self.capacity - head) % self.capacity
    }

    /// True if no keys wait.
    pub fn is_empty(&self, mem: &Memory) -> bool {
        self.len(mem) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo() {
        let mut mem = Memory::new();
        let t = TypeAhead::init(&mut mem, 0xF000, 16);
        assert!(t.is_empty(&mem));
        assert!(t.push(&mut mem, b'a' as u16));
        assert!(t.push(&mut mem, b'b' as u16));
        assert_eq!(t.len(&mem), 2);
        assert_eq!(t.pop(&mut mem), Some(b'a' as u16));
        assert_eq!(t.pop(&mut mem), Some(b'b' as u16));
        assert_eq!(t.pop(&mut mem), None);
    }

    #[test]
    fn overflow_drops_keys() {
        let mut mem = Memory::new();
        let t = TypeAhead::init(&mut mem, 0xF000, 6); // capacity 3, holds 2
        assert!(t.push(&mut mem, 1));
        assert!(t.push(&mut mem, 2));
        assert!(!t.push(&mut mem, 3));
        assert_eq!(t.len(&mem), 2);
    }

    #[test]
    fn wraps_around() {
        let mut mem = Memory::new();
        let t = TypeAhead::init(&mut mem, 0xF000, 7); // capacity 4, holds 3
        for round in 0..10u16 {
            assert!(t.push(&mut mem, round));
            assert_eq!(t.pop(&mut mem), Some(round));
        }
        assert!(t.is_empty(&mem));
    }

    #[test]
    fn survives_in_the_memory_image() {
        // The buffer state lives entirely in memory: attach() on a copied
        // image sees the same keys (this is what makes type-ahead survive
        // a world swap).
        let mut mem = Memory::new();
        let t = TypeAhead::init(&mut mem, 0xF000, 16);
        t.push(&mut mem, 42);
        let mut copy = Memory::new();
        copy.load_image(mem.as_words());
        let t2 = TypeAhead::attach(&copy, 0xF000);
        assert_eq!(t2.pop(&mut copy), Some(42));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_region_panics() {
        let mut mem = Memory::new();
        TypeAhead::init(&mut mem, 0xF000, 3);
    }
}
