//! `OutLoad` and `InLoad`: world swapping through disk files (§4, §4.1).
//!
//! "OutLoad writes the current machine state on the file, and returns with
//! the written flag true … The InLoad procedure restores the state of the
//! machine from the given file, and passes a message (about 20 words) to
//! the restored program. The effect is that OutLoad returns again, this
//! time with written false and with the message that was provided in the
//! InLoad call."
//!
//! The written flag and message vector live at fixed low-memory addresses
//! so that the restored program — whatever language it was written in —
//! finds them; this is representation standardization again (§1).
//!
//! State files are rewritten **in place**: the image size never changes,
//! so every page is an ordinary write and the whole swap streams at disk
//! speed — about a second for the 64K-word image (§4.1), measured by
//! experiment E6. Creating the state file in the first place allocates
//! its ~260 pages at a revolution each, which is why programs make their
//! state files once, at install time (§3.6).

use alto_disk::Disk;
use alto_fs::file::{bytes_to_words, words_to_bytes};
use alto_fs::names::FileFullName;
use alto_fs::{dir, FsError};
use alto_machine::state::{MachineState, HEADER_WORDS};
use alto_sim::MEMORY_WORDS;

use crate::errors::OsError;
use crate::os::AltoOs;

/// Size of the `InLoad` message vector, in words ("about 20 words").
pub const MESSAGE_WORDS: usize = 20;

/// Fixed address of the written flag.
pub const FLAG_ADDR: u16 = 0o100;
/// Fixed address of the message vector (20 words).
pub const MESSAGE_ADDR: u16 = 0o101;

/// What `OutLoad` reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutLoadResult {
    /// The state was written; execution continued past the OutLoad.
    Written,
}

/// Total words in a state file.
fn state_words() -> usize {
    HEADER_WORDS + MEMORY_WORDS
}

impl<D: Disk> AltoOs<D> {
    /// Creates (or finds) a state file of the right size, entered in the
    /// root directory. Pre-allocating once makes every later swap an
    /// in-place rewrite at streaming speed.
    pub fn create_state_file(&mut self, name: &str) -> Result<FileFullName, OsError> {
        let root = self.fs.root_dir();
        if let Some(existing) = dir::lookup(&mut self.fs, root, name)? {
            return Ok(existing);
        }
        let file = dir::create_named_file(&mut self.fs, root, name)?;
        let zeros = vec![0u8; state_words() * 2];
        self.fs.write_file(file, &zeros)?;
        Ok(file)
    }

    /// `OutLoad`: writes the entire machine state to `file`.
    ///
    /// On return the machine continues with the written flag (at
    /// [`FLAG_ADDR`]) true and `AC0 = 1`. When some later `InLoad` restores
    /// the file, execution continues *from the same point* with the flag
    /// false, `AC0 = 0`, and the message at [`MESSAGE_ADDR`].
    pub fn out_load(&mut self, file: FileFullName) -> Result<OutLoadResult, OsError> {
        // The state we save must be the one the restored program resumes
        // from: flag=0 (the "restored" branch) is what goes to disk; the
        // in-memory flag is then set to 1 (the "written" branch).
        self.machine.mem.write(FLAG_ADDR, 0);
        for i in 0..MESSAGE_WORDS as u16 {
            self.machine.mem.write(MESSAGE_ADDR + i, 0);
        }
        self.machine.ac[0] = 0;
        let state = MachineState::capture(&self.machine);
        let bytes = words_to_bytes(&state.encode());
        self.fs.write_file(file, &bytes)?;
        // Continue on the "written" branch.
        self.machine.mem.write(FLAG_ADDR, 1);
        self.machine.ac[0] = 1;
        Ok(OutLoadResult::Written)
    }

    /// `InLoad`: replaces the machine state from `file`, delivering
    /// `message` to the restored program.
    pub fn in_load(
        &mut self,
        file: FileFullName,
        message: &[u16; MESSAGE_WORDS],
    ) -> Result<(), OsError> {
        let bytes = self.fs.read_file(file)?;
        let words = bytes_to_words(&bytes);
        let state = MachineState::decode(&words)?;
        state.restore(&mut self.machine);
        // Deliver the restored-branch values.
        self.machine.mem.write(FLAG_ADDR, 0);
        self.machine
            .mem
            .write_block(MESSAGE_ADDR, message)
            .expect("message vector is in range");
        self.machine.ac[0] = 0;
        // The resident structures changed with the memory image; re-attach.
        let l2 = self.levels().level(2).expect("level 2 exists");
        self.typeahead = crate::typeahead::TypeAhead::attach(&self.machine.mem, l2.base);
        Ok(())
    }

    /// `OutLoad` by root-directory name, creating the state file if
    /// needed (the system-call interface).
    pub fn out_load_named(&mut self, name: &str) -> Result<OutLoadResult, OsError> {
        let file = self.create_state_file(name)?;
        self.out_load(file)
    }

    /// `InLoad` by root-directory name.
    pub fn in_load_named(
        &mut self,
        name: &str,
        message: &[u16; MESSAGE_WORDS],
    ) -> Result<(), OsError> {
        let root = self.fs.root_dir();
        let file = dir::lookup(&mut self.fs, root, name)?
            .ok_or_else(|| OsError::Fs(FsError::NameNotFound(name.to_string())))?;
        self.in_load(file, message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alto_disk::{DiskDrive, DiskModel};
    use alto_machine::Machine;
    use alto_sim::{SimClock, SimTime, Trace};

    fn os() -> AltoOs {
        let clock = SimClock::new();
        let trace = Trace::new();
        let machine = Machine::new(clock.clone(), trace.clone());
        let drive = DiskDrive::with_formatted_pack(clock, trace, DiskModel::Diablo31, 1);
        AltoOs::install(machine, drive).unwrap()
    }

    #[test]
    fn out_load_then_in_load_resumes_with_message() {
        let mut os = os();
        let file = os.create_state_file("World.state").unwrap();
        os.machine.pc = 0o4321;
        os.machine.ac[2] = 777;
        let r = os.out_load(file).unwrap();
        assert_eq!(r, OutLoadResult::Written);
        // Written branch: flag 1, AC0 1.
        assert_eq!(os.machine.mem.read(FLAG_ADDR), 1);
        assert_eq!(os.machine.ac[0], 1);

        // Wreck the machine, then restore.
        os.machine.pc = 0;
        os.machine.ac = [9, 9, 9, 9];
        os.machine.mem.write(0o5000, 0xDEAD);
        let mut message = [0u16; MESSAGE_WORDS];
        message[0] = 42;
        message[19] = 43;
        os.in_load(file, &message).unwrap();
        // Restored branch: same PC/ACs as at capture, flag 0, message
        // delivered, AC0 = 0.
        assert_eq!(os.machine.pc, 0o4321);
        assert_eq!(os.machine.ac[2], 777);
        assert_eq!(os.machine.ac[0], 0);
        assert_eq!(os.machine.mem.read(FLAG_ADDR), 0);
        assert_eq!(os.machine.mem.read(MESSAGE_ADDR), 42);
        assert_eq!(os.machine.mem.read(MESSAGE_ADDR + 19), 43);
        assert_eq!(os.machine.mem.read(0o5000), 0); // wreckage gone
    }

    #[test]
    fn swap_takes_about_a_second() {
        // §4.1: each of OutLoad/InLoad "requires about a second".
        let mut os = os();
        let file = os.create_state_file("World.state").unwrap();
        let clock = os.machine.clock().clone();

        let t0 = clock.now();
        os.out_load(file).unwrap();
        let out_time = clock.now() - t0;

        let t0 = clock.now();
        os.in_load(file, &[0; MESSAGE_WORDS]).unwrap();
        let in_time = clock.now() - t0;

        for (name, t) in [("OutLoad", out_time), ("InLoad", in_time)] {
            let secs = t.as_secs_f64();
            assert!(
                (0.5..2.5).contains(&secs),
                "{name} took {secs:.2} simulated seconds"
            );
        }
    }

    #[test]
    fn state_file_creation_is_the_slow_part() {
        let mut os = os();
        let clock = os.machine.clock().clone();
        let t0 = clock.now();
        let file = os.create_state_file("World.state").unwrap();
        let create_time = clock.now() - t0;
        let t0 = clock.now();
        os.out_load(file).unwrap();
        let swap_time = clock.now() - t0;
        // Creation allocates ~260 pages at a revolution each; the swap
        // itself is in-place streaming.
        assert!(
            create_time > swap_time.scaled(3),
            "create {create_time} vs swap {swap_time}"
        );
        // Creating again finds the existing file instantly-ish.
        let t0 = clock.now();
        os.create_state_file("World.state").unwrap();
        assert!(clock.now() - t0 < SimTime::from_millis(500));
    }

    #[test]
    fn coroutine_ping_pong() {
        // Two "programs" exchange control through two state files, paper
        // §4.1's coroutine linkage, orchestrated from Rust.
        let mut os = os();
        let a = os.create_state_file("A.state").unwrap();
        let b = os.create_state_file("B.state").unwrap();

        // Program A: counting in AC2.
        os.machine.pc = 0o1000;
        os.machine.ac[2] = 1;
        os.out_load(a).unwrap();

        // Program B: counting in AC2 by hundreds.
        os.machine.pc = 0o2000;
        os.machine.ac[2] = 100;
        os.out_load(b).unwrap();

        // Switch to A, advance it, save it, switch to B.
        os.in_load(a, &[0; MESSAGE_WORDS]).unwrap();
        assert_eq!(os.machine.pc, 0o1000);
        os.machine.ac[2] += 1; // "A runs"
        os.out_load(a).unwrap();
        os.in_load(b, &[0; MESSAGE_WORDS]).unwrap();
        assert_eq!(os.machine.pc, 0o2000);
        assert_eq!(os.machine.ac[2], 100);
        os.machine.ac[2] += 100; // "B runs"
        os.out_load(b).unwrap();
        // Back to A: its private count is intact.
        os.in_load(a, &[0; MESSAGE_WORDS]).unwrap();
        assert_eq!(os.machine.ac[2], 2);
    }

    #[test]
    fn vm_program_outloads_itself() {
        // A machine program calls OutLoad via trap, sees written=1, halts.
        // We then InLoad the file and the program continues at the same
        // place with written=0, taking the other branch.
        let mut os = os();
        let source = format!(
            "
            lda 0, fnamep
            trap 0, {outload}
            ; AC0 = written flag
            mov# 0, 0, szr   ; skip when AC0 == 0 (restored)
            jmp written
restored:   lda 1, mk2
            sta 1, 0o200
            halt
written:    lda 1, mk1
            sta 1, 0o200
            halt
mk1:        .word 111
mk2:        .word 222
fnamep:     .word fname
fname:      .str \"Self.state\"
            ",
            outload = crate::syscalls::SysCall::OutLoad.code()
        );
        let code = alto_machine::assemble(&source).unwrap();
        os.machine.load_program(0o400, &code.words).unwrap();
        os.run_machine(2_000_000).unwrap();
        assert_eq!(
            os.machine.mem.read(0o200),
            111,
            "first run takes the written branch"
        );

        // Now restore the saved world: the program resumes right after its
        // OutLoad trap with AC0 = 0.
        os.in_load_named("Self.state", &[0; MESSAGE_WORDS]).unwrap();
        os.run_machine(2_000_000).unwrap();
        assert_eq!(
            os.machine.mem.read(0o200),
            222,
            "restored run takes the other branch"
        );
    }

    #[test]
    fn in_load_unknown_file_fails() {
        let mut os = os();
        assert!(matches!(
            os.in_load_named("nothing.state", &[0; MESSAGE_WORDS]),
            Err(OsError::Fs(FsError::NameNotFound(_)))
        ));
    }
}
