//! The resident system data region (§5, level 3).
//!
//! "…and storage for a good deal of handy data, such as hints for
//! frequently-used files, the user's name and password, etc."
//!
//! Level 3 ("hints for important files") holds a small record in simulated
//! memory: the user's name and password and a table of full-name hints for
//! frequently used files. Because it lives in the memory image it survives
//! world swaps, and because it is a *hint* region, everything in it can be
//! reconstructed (the names from the user, the hints from the directory).
//!
//! Layout within the level-3 region:
//!
//! ```text
//! word 0        magic
//! word 1        user-name length | password length (bytes, packed)
//! words 2..21   user name (20 words = 40 bytes)
//! words 22..41  password
//! word 42       hint count
//! per hint:     serial(2), version, leader DA  (4 words each)
//! ```

use alto_disk::{Disk, DiskAddress};
use alto_fs::names::{FileFullName, Fv, SerialNumber};

use crate::os::AltoOs;

const MAGIC: u16 = 0xA5D3;
const NAME_BASE: u16 = 2;
const PASS_BASE: u16 = 22;
const COUNT_ADDR: u16 = 42;
const HINTS_BASE: u16 = 43;
/// Maximum hint entries the region holds.
pub const MAX_FILE_HINTS: u16 = 32;
const NAME_MAX: usize = 40;

impl<D: Disk> AltoOs<D> {
    fn level3_base(&self) -> u16 {
        self.levels().level(3).expect("level 3 exists").base
    }

    /// Initializes the system data region (called lazily by the setters).
    fn ensure_sysdata(&mut self) -> u16 {
        let base = self.level3_base();
        if self.machine.mem.read(base) != MAGIC {
            let words = self.levels().level(3).expect("level 3 exists").words;
            let _ = self.machine.mem.fill(base, words as usize, 0);
            self.machine.mem.write(base, MAGIC);
        }
        base
    }

    /// Records the user's name and password in the resident region.
    ///
    /// Overlong values are truncated to 40 bytes, as the fixed record
    /// demands.
    pub fn set_user(&mut self, name: &str, password: &str) {
        let base = self.ensure_sysdata();
        let name = &name.as_bytes()[..name.len().min(NAME_MAX)];
        let password = &password.as_bytes()[..password.len().min(NAME_MAX)];
        self.machine
            .mem
            .write(base + 1, ((name.len() as u16) << 8) | password.len() as u16);
        for (slot, bytes) in [(NAME_BASE, name), (PASS_BASE, password)] {
            for (i, chunk) in bytes.chunks(2).enumerate() {
                let hi = (chunk[0] as u16) << 8;
                let lo = chunk.get(1).map_or(0, |&b| b as u16);
                self.machine.mem.write(base + slot + i as u16, hi | lo);
            }
        }
    }

    /// Reads the user's name and password back from the region.
    pub fn user(&self) -> Option<(String, String)> {
        let base = self.level3_base();
        if self.machine.mem.read(base) != MAGIC {
            return None;
        }
        let lens = self.machine.mem.read(base + 1);
        let read = |slot: u16, len: usize| -> String {
            let mut bytes = Vec::with_capacity(len);
            for i in 0..len {
                let w = self.machine.mem.read(base + slot + (i / 2) as u16);
                bytes.push(if i % 2 == 0 { (w >> 8) as u8 } else { w as u8 });
            }
            String::from_utf8_lossy(&bytes).into_owned()
        };
        Some((
            read(NAME_BASE, (lens >> 8) as usize),
            read(PASS_BASE, (lens & 0xFF) as usize),
        ))
    }

    /// Remembers a full-name hint for a frequently used file. Returns
    /// false when the table is full.
    pub fn remember_file_hint(&mut self, file: FileFullName) -> bool {
        let base = self.ensure_sysdata();
        let count = self.machine.mem.read(base + COUNT_ADDR);
        // Update in place if the serial is already remembered.
        for i in 0..count {
            let at = base + HINTS_BASE + i * 4;
            let serial = SerialNumber::from_words([
                self.machine.mem.read(at),
                self.machine.mem.read(at + 1),
            ]);
            if serial == file.fv.serial {
                self.machine.mem.write(at + 2, file.fv.version);
                self.machine.mem.write(at + 3, file.leader_da.0);
                return true;
            }
        }
        if count >= MAX_FILE_HINTS {
            return false;
        }
        let at = base + HINTS_BASE + count * 4;
        let s = file.fv.serial.words();
        self.machine.mem.write(at, s[0]);
        self.machine.mem.write(at + 1, s[1]);
        self.machine.mem.write(at + 2, file.fv.version);
        self.machine.mem.write(at + 3, file.leader_da.0);
        self.machine.mem.write(base + COUNT_ADDR, count + 1);
        true
    }

    /// All remembered file hints.
    pub fn file_hints(&self) -> Vec<FileFullName> {
        let base = self.level3_base();
        if self.machine.mem.read(base) != MAGIC {
            return Vec::new();
        }
        let count = self.machine.mem.read(base + COUNT_ADDR).min(MAX_FILE_HINTS);
        (0..count)
            .map(|i| {
                let at = base + HINTS_BASE + i * 4;
                FileFullName::new(
                    Fv::new(
                        SerialNumber::from_words([
                            self.machine.mem.read(at),
                            self.machine.mem.read(at + 1),
                        ]),
                        self.machine.mem.read(at + 2),
                    ),
                    DiskAddress(self.machine.mem.read(at + 3)),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swap::MESSAGE_WORDS;
    use alto_disk::{DiskDrive, DiskModel};
    use alto_fs::dir;
    use alto_machine::Machine;
    use alto_sim::{SimClock, Trace};

    fn os() -> AltoOs {
        let clock = SimClock::new();
        let machine = Machine::new(clock.clone(), Trace::new());
        let drive = DiskDrive::with_formatted_pack(clock, Trace::new(), DiskModel::Diablo31, 1);
        AltoOs::install(machine, drive).unwrap()
    }

    #[test]
    fn user_name_and_password_round_trip() {
        let mut os = os();
        assert_eq!(os.user(), None);
        os.set_user("lampson", "gw-basic");
        assert_eq!(os.user(), Some(("lampson".into(), "gw-basic".into())));
        // Overwrite.
        os.set_user("sproull", "x");
        assert_eq!(os.user(), Some(("sproull".into(), "x".into())));
    }

    #[test]
    fn overlong_credentials_truncate() {
        let mut os = os();
        os.set_user(&"n".repeat(100), &"p".repeat(100));
        let (n, p) = os.user().unwrap();
        assert_eq!(n.len(), 40);
        assert_eq!(p.len(), 40);
    }

    #[test]
    fn file_hints_accumulate_and_update() {
        let mut os = os();
        let root = os.fs.root_dir();
        let a = dir::create_named_file(&mut os.fs, root, "a").unwrap();
        let b = dir::create_named_file(&mut os.fs, root, "b").unwrap();
        assert!(os.remember_file_hint(a));
        assert!(os.remember_file_hint(b));
        assert_eq!(os.file_hints(), vec![a, b]);
        // Updating the same serial replaces in place.
        let moved = alto_fs::names::FileFullName::new(a.fv, DiskAddress(999));
        assert!(os.remember_file_hint(moved));
        assert_eq!(os.file_hints()[0].leader_da, DiskAddress(999));
        assert_eq!(os.file_hints().len(), 2);
    }

    #[test]
    fn hint_table_fills_up() {
        let mut os = os();
        let root = os.fs.root_dir();
        for i in 0..MAX_FILE_HINTS {
            let f = dir::create_named_file(&mut os.fs, root, &format!("h{i}")).unwrap();
            assert!(os.remember_file_hint(f));
        }
        let extra = dir::create_named_file(&mut os.fs, root, "extra").unwrap();
        assert!(!os.remember_file_hint(extra));
        assert_eq!(os.file_hints().len(), MAX_FILE_HINTS as usize);
    }

    #[test]
    fn sysdata_survives_a_world_swap() {
        // The region is part of the memory image: it travels with worlds.
        let mut os = os();
        os.set_user("boggs", "ether");
        let root = os.fs.root_dir();
        let f = dir::create_named_file(&mut os.fs, root, "fav").unwrap();
        os.remember_file_hint(f);
        let state = os.create_state_file("W.state").unwrap();
        os.out_load(state).unwrap();
        os.set_user("intruder", "clobbered");
        os.in_load(state, &[0; MESSAGE_WORDS]).unwrap();
        assert_eq!(os.user(), Some(("boggs".into(), "ether".into())));
        assert_eq!(os.file_hints(), vec![f]);
    }

    #[test]
    fn junta_below_3_loses_the_region() {
        let mut os = os();
        os.set_user("gone", "soon");
        os.junta(2).unwrap();
        os.counter_junta();
        assert_eq!(os.user(), None);
    }
}
