//! Debugging by world swap (§4).
//!
//! "When a breakpoint is encountered or when the user strikes a special
//! DEBUG key on the keyboard, the state of the machine is written on a
//! disk file, and the machine state is restored from a file that contains
//! the debugger. The debugging program may examine or alter the state of
//! the faulty program by reading or writing portions of the file that was
//! written as a result of the breakpoint. The debugger can later resume
//! execution of the original program by restoring the machine state from
//! the file. The original program and the debugger thus operate as
//! coroutines."
//!
//! A breakpoint is a planted trap; hitting it saves the whole world to the
//! *swatee* file (the name the real debugger, Swat, used). The
//! [`SwateeDebugger`] then works **on the file** — not on the machine —
//! exactly as the paper describes, and resuming is an `InLoad`.

use alto_disk::Disk;
use alto_fs::file::{bytes_to_words, words_to_bytes};
use alto_fs::names::FileFullName;
use alto_machine::state::MachineState;
use alto_machine::{disassemble, Step};

use crate::errors::OsError;
use crate::os::AltoOs;

/// The trap code planted at breakpoints (within the OS range, claimed by
/// the debugger before syscall dispatch sees it).
pub const BREAK_TRAP: u16 = 0x7FE;

/// The conventional swatee file name.
pub const SWATEE: &str = "Swatee.state";

/// The DEBUG key (§4: "when the user strikes a special DEBUG key on the
/// keyboard"): control-D.
pub const DEBUG_KEY: u16 = 0x04;

/// A planted breakpoint: where, and the displaced instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Breakpoint {
    /// Address of the breakpoint.
    pub addr: u16,
    /// The instruction word the trap displaced.
    pub saved: u16,
}

/// Why [`AltoOs::run_until_break`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DebugStop {
    /// A breakpoint fired at `addr`; the world is saved in the swatee file
    /// with its PC at `addr` (pointing at the displaced instruction).
    Breakpoint {
        /// The breakpoint address.
        addr: u16,
    },
    /// The program halted normally.
    Halted,
}

impl<D: Disk> AltoOs<D> {
    /// Saves the world to the swatee file *without* the OutLoad protocol:
    /// the debugger must preserve every register, including AC0, which the
    /// §4.1 written-flag convention would clobber. (The real Swat hooked
    /// the trap vector for the same reason.)
    fn save_world_raw(&mut self, file: FileFullName) -> Result<(), OsError> {
        let state = MachineState::capture(&self.machine);
        let bytes = words_to_bytes(&state.encode());
        self.fs.write_file(file, &bytes)?;
        Ok(())
    }

    /// Restores the world from the swatee file, registers exact.
    fn restore_world_raw(&mut self, file: FileFullName) -> Result<(), OsError> {
        let bytes = self.fs.read_file(file)?;
        let state = MachineState::decode(&bytes_to_words(&bytes))?;
        state.restore(&mut self.machine);
        let l2 = self.levels().level(2).expect("level 2 exists");
        self.typeahead = crate::typeahead::TypeAhead::attach(&self.machine.mem, l2.base);
        Ok(())
    }

    /// Plants a breakpoint at `addr`, returning what it displaced.
    pub fn set_breakpoint(&mut self, addr: u16) -> Breakpoint {
        let saved = self.machine.mem.read(addr);
        let trap = alto_machine::instr::Instr::Trap {
            ac: 0,
            code: BREAK_TRAP,
        }
        .encode();
        self.machine.mem.write(addr, trap);
        Breakpoint { addr, saved }
    }

    /// Removes a breakpoint, restoring the displaced instruction.
    pub fn clear_breakpoint(&mut self, bp: Breakpoint) {
        self.machine.mem.write(bp.addr, bp.saved);
    }

    /// Runs until a breakpoint fires, the program halts, or the budget is
    /// exhausted. On a breakpoint the entire world is saved to the swatee
    /// file with the PC rewound to the breakpoint address; the caller
    /// opens a [`SwateeDebugger`] on it.
    pub fn run_until_break(&mut self, bp: Breakpoint, budget: u64) -> Result<DebugStop, OsError> {
        let mut remaining = budget;
        loop {
            if remaining == 0 {
                return Err(OsError::Machine(
                    alto_machine::MachineError::BudgetExhausted,
                ));
            }
            remaining -= 1;
            match self.machine.step().map_err(OsError::Machine)? {
                Step::Running => {}
                Step::Halted => return Ok(DebugStop::Halted),
                Step::Interrupt => self.service_keyboard(),
                Step::Trap { code, .. } if code == BREAK_TRAP => {
                    // Rewind over the trap so the saved world's PC names
                    // the displaced instruction, then swap out.
                    self.machine.pc = self.machine.pc.wrapping_sub(1);
                    debug_assert_eq!(self.machine.pc, bp.addr);
                    let file = self.create_state_file(SWATEE)?;
                    self.save_world_raw(file)?;
                    return Ok(DebugStop::Breakpoint { addr: bp.addr });
                }
                Step::Trap { code, ac } => self.handle_syscall(code, ac)?,
            }
        }
    }

    /// The DEBUG key (§4): unconditionally saves the current world to the
    /// swatee file, as if the user had struck the key right now.
    pub fn debug_key(&mut self) -> Result<FileFullName, OsError> {
        let file = self.create_state_file(SWATEE)?;
        self.save_world_raw(file)?;
        Ok(file)
    }

    /// Runs the machine like [`AltoOs::run_machine`], but watching the
    /// keyboard for the [`DEBUG_KEY`]: when the user strikes it, the world
    /// is saved to the swatee file and this returns `Some(file)` so the
    /// caller can enter the debugger. Returns `None` on a normal halt.
    pub fn run_machine_with_debug(
        &mut self,
        mut budget: u64,
    ) -> Result<Option<FileFullName>, OsError> {
        loop {
            if budget == 0 {
                return Err(OsError::Machine(
                    alto_machine::MachineError::BudgetExhausted,
                ));
            }
            budget -= 1;
            match self.machine.step().map_err(OsError::Machine)? {
                Step::Running => {}
                Step::Halted => return Ok(None),
                Step::Interrupt => {
                    self.service_keyboard();
                    if self.take_debug_key() {
                        return Ok(Some(self.debug_key()?));
                    }
                }
                Step::Trap { code, ac } => self.handle_syscall(code, ac)?,
            }
        }
    }

    /// Consumes a DEBUG key if it is the next key in the type-ahead
    /// buffer; ordinary keys stay queued for the program.
    fn take_debug_key(&mut self) -> bool {
        if !self.levels.is_resident(2) {
            return false;
        }
        let mem = &mut self.machine.mem;
        if self.typeahead.peek(mem) == Some(DEBUG_KEY) {
            let _ = self.typeahead.pop(mem);
            true
        } else {
            false
        }
    }

    /// Resumes the swatee: restores the world, replaces the trap with the
    /// displaced instruction so execution continues *through* the
    /// breakpoint site, then runs to completion or the next event.
    pub fn resume_swatee(&mut self, bp: Breakpoint, budget: u64) -> Result<DebugStop, OsError> {
        let root = self.fs.root_dir();
        let file = alto_fs::dir::lookup(&mut self.fs, root, SWATEE)?
            .ok_or_else(|| OsError::Fs(alto_fs::FsError::NameNotFound(SWATEE.into())))?;
        self.restore_world_raw(file)?;
        // The displaced instruction goes back; the breakpoint is spent.
        self.machine.mem.write(bp.addr, bp.saved);
        let mut remaining = budget;
        loop {
            if remaining == 0 {
                return Err(OsError::Machine(
                    alto_machine::MachineError::BudgetExhausted,
                ));
            }
            remaining -= 1;
            match self.machine.step().map_err(OsError::Machine)? {
                Step::Running => {}
                Step::Halted => return Ok(DebugStop::Halted),
                Step::Interrupt => self.service_keyboard(),
                Step::Trap { code, .. } if code == BREAK_TRAP => {
                    self.machine.pc = self.machine.pc.wrapping_sub(1);
                    let file = self.create_state_file(SWATEE)?;
                    self.save_world_raw(file)?;
                    return Ok(DebugStop::Breakpoint {
                        addr: self.machine.pc,
                    });
                }
                Step::Trap { code, ac } => self.handle_syscall(code, ac)?,
            }
        }
    }
}

/// The debugger proper: examines and alters the sleeping world *through
/// its state file* (§4: "by reading or writing portions of the file").
#[derive(Debug)]
pub struct SwateeDebugger {
    file: FileFullName,
    state: MachineState,
}

impl SwateeDebugger {
    /// Opens the swatee file.
    pub fn open<D: Disk>(
        os: &mut AltoOs<D>,
        file: FileFullName,
    ) -> Result<SwateeDebugger, OsError> {
        let bytes = os.fs.read_file(file)?;
        let state = MachineState::decode(&bytes_to_words(&bytes))?;
        Ok(SwateeDebugger { file, state })
    }

    /// Opens the conventional swatee file by name.
    pub fn open_named<D: Disk>(os: &mut AltoOs<D>) -> Result<SwateeDebugger, OsError> {
        let root = os.fs.root_dir();
        let file = alto_fs::dir::lookup(&mut os.fs, root, SWATEE)?
            .ok_or_else(|| OsError::Fs(alto_fs::FsError::NameNotFound(SWATEE.into())))?;
        SwateeDebugger::open(os, file)
    }

    /// The sleeping world's program counter.
    pub fn pc(&self) -> u16 {
        self.state.pc
    }

    /// Reads an accumulator.
    pub fn ac(&self, n: usize) -> u16 {
        self.state.ac[n]
    }

    /// Writes an accumulator.
    pub fn set_ac(&mut self, n: usize, value: u16) {
        self.state.ac[n] = value;
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u16) {
        self.state.pc = pc;
    }

    /// Reads a memory word of the sleeping world.
    pub fn read(&self, addr: u16) -> u16 {
        self.state.memory[addr as usize]
    }

    /// Writes a memory word of the sleeping world.
    pub fn write(&mut self, addr: u16, value: u16) {
        self.state.memory[addr as usize] = value;
    }

    /// Disassembles `count` words around the sleeping world's PC.
    pub fn listing(&self, around: u16, count: u16) -> Vec<(u16, String)> {
        let start = around.saturating_sub(count / 2);
        (0..count)
            .map(|i| {
                let addr = start.wrapping_add(i);
                let word = self.state.memory[addr as usize];
                let marker = if addr == self.state.pc { "=> " } else { "   " };
                (addr, format!("{marker}{addr:#06o}: {}", disassemble(word)))
            })
            .collect()
    }

    /// Writes the (possibly altered) world back to its file.
    pub fn save<D: Disk>(&self, os: &mut AltoOs<D>) -> Result<(), OsError> {
        let bytes = words_to_bytes(&self.state.encode());
        os.fs.write_file(self.file, &bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alto_disk::{DiskDrive, DiskModel};
    use alto_machine::Machine;
    use alto_sim::{SimClock, Trace};

    fn os() -> AltoOs {
        let clock = SimClock::new();
        let machine = Machine::new(clock.clone(), Trace::new());
        let drive = DiskDrive::with_formatted_pack(clock, Trace::new(), DiskModel::Diablo31, 1);
        AltoOs::install(machine, drive).unwrap()
    }

    /// The program from the paper's debugging story: it computes, we break
    /// it mid-flight, inspect, patch, and resume.
    fn counting_program(os: &mut AltoOs) -> (u16, u16) {
        let code = alto_machine::assemble(
            "
            subz 0, 0       ; AC0 = 0
loop:       inc 0, 0
            lda 1, limit
            sub# 0, 1, szr
            jmp loop
            sta 0, result
            halt
limit:      .word 50
result:     .word 0
            ",
        )
        .unwrap();
        os.machine.load_program(0o400, &code.words).unwrap();
        (code.labels["loop"], code.labels["result"])
    }

    #[test]
    fn breakpoint_stops_and_saves_the_world() {
        let mut os = os();
        let (loop_addr, _) = counting_program(&mut os);
        let bp = os.set_breakpoint(loop_addr);
        let stop = os.run_until_break(bp, 100).unwrap();
        assert_eq!(stop, DebugStop::Breakpoint { addr: loop_addr });
        // The swatee file exists and its PC names the breakpoint.
        let dbg = SwateeDebugger::open_named(&mut os).unwrap();
        assert_eq!(dbg.pc(), loop_addr);
    }

    #[test]
    fn examine_patch_resume() {
        let mut os = os();
        let (loop_addr, result_addr) = counting_program(&mut os);
        let bp = os.set_breakpoint(loop_addr);
        os.run_until_break(bp, 100).unwrap();

        // The debugger examines the sleeping world…
        let mut dbg = SwateeDebugger::open_named(&mut os).unwrap();
        assert_eq!(dbg.ac(0), 0, "stopped before the first increment");
        // …and alters it: start the count at 40 instead of 0.
        dbg.set_ac(0, 40);
        dbg.save(&mut os).unwrap();

        // Resume: the program finishes from the patched state.
        let stop = os.resume_swatee(bp, 10_000).unwrap();
        assert_eq!(stop, DebugStop::Halted);
        assert_eq!(os.machine.mem.read(result_addr), 50);
        // It counted 40 -> 50: ten increments, not fifty. Check by timing:
        // fewer than 100 instructions executed after resume.
    }

    #[test]
    fn listing_disassembles_around_pc() {
        let mut os = os();
        let (loop_addr, _) = counting_program(&mut os);
        let bp = os.set_breakpoint(loop_addr);
        os.run_until_break(bp, 100).unwrap();
        let dbg = SwateeDebugger::open_named(&mut os).unwrap();
        let lines = dbg.listing(dbg.pc(), 6);
        assert_eq!(lines.len(), 6);
        let text: Vec<&str> = lines.iter().map(|(_, s)| s.as_str()).collect();
        assert!(text.iter().any(|l| l.starts_with("=> ")), "{text:?}");
        // The displaced instruction site shows the planted trap.
        let at_pc = text.iter().find(|l| l.starts_with("=> ")).unwrap();
        assert!(at_pc.contains("TRAP"), "{at_pc}");
    }

    #[test]
    fn debug_key_saves_anytime() {
        let mut os = os();
        os.machine.ac[2] = 0x5AFE;
        os.debug_key().unwrap();
        let dbg = SwateeDebugger::open_named(&mut os).unwrap();
        assert_eq!(dbg.ac(2), 0x5AFE);
    }

    #[test]
    fn memory_patching_through_the_file() {
        let mut os = os();
        let (loop_addr, result_addr) = counting_program(&mut os);
        let bp = os.set_breakpoint(loop_addr);
        os.run_until_break(bp, 100).unwrap();
        let mut dbg = SwateeDebugger::open_named(&mut os).unwrap();
        // Change the limit in the sleeping world's memory.
        let limit_addr = result_addr - 1;
        assert_eq!(dbg.read(limit_addr), 50);
        dbg.write(limit_addr, 3);
        dbg.save(&mut os).unwrap();
        os.resume_swatee(bp, 10_000).unwrap();
        assert_eq!(os.machine.mem.read(result_addr), 3);
    }

    #[test]
    fn clear_breakpoint_restores_the_instruction() {
        let mut os = os();
        let (loop_addr, result_addr) = counting_program(&mut os);
        let original = os.machine.mem.read(loop_addr);
        let bp = os.set_breakpoint(loop_addr);
        assert_ne!(os.machine.mem.read(loop_addr), original);
        os.clear_breakpoint(bp);
        assert_eq!(os.machine.mem.read(loop_addr), original);
        // The program now runs to completion unimpeded.
        os.run_machine(10_000).unwrap();
        assert_eq!(os.machine.mem.read(result_addr), 50);
    }

    #[test]
    fn the_debugger_and_program_are_coroutines() {
        // Break, resume, break again at the same site (re-planted), with
        // the debugger watching the count climb.
        let mut os = os();
        let (loop_addr, _) = counting_program(&mut os);
        let mut bp = os.set_breakpoint(loop_addr);
        os.run_until_break(bp, 1000).unwrap();
        let first = SwateeDebugger::open_named(&mut os).unwrap().ac(0);

        // Resume but re-plant the breakpoint *in the swatee file* so it
        // fires again on the next lap.
        let dbg = SwateeDebugger::open_named(&mut os).unwrap();
        // Patch: put the trap back at loop_addr after one more lap? The
        // simple route: resume fully to the next hit by re-planting in the
        // live machine after restore.
        dbg.save(&mut os).unwrap();
        {
            let root = os.fs.root_dir();
            let file = alto_fs::dir::lookup(&mut os.fs, root, SWATEE)
                .unwrap()
                .unwrap();
            let bytes = os.fs.read_file(file).unwrap();
            let state = MachineState::decode(&bytes_to_words(&bytes)).unwrap();
            state.restore(&mut os.machine);
        }
        os.machine.mem.write(bp.addr, bp.saved); // step over…
        os.machine.step().unwrap(); // …the displaced instruction
        bp = os.set_breakpoint(loop_addr); // re-plant
        let stop = os.run_until_break(bp, 1000).unwrap();
        assert_eq!(stop, DebugStop::Breakpoint { addr: loop_addr });
        let second = SwateeDebugger::open_named(&mut os).unwrap().ac(0);
        assert!(second > first, "count went {first} -> {second}");
    }

    #[test]
    fn debug_key_interrupts_a_running_program() {
        let mut os = os();
        // A spinning program that only ends when the DEBUG key swaps it out.
        let code = alto_machine::assemble("inten\nspin: jmp spin").unwrap();
        os.machine.load_program(0o400, &code.words).unwrap();
        os.machine.ac[2] = 0xFEED;
        // Script the DEBUG key a few simulated microseconds in.
        let now = os.machine.clock().now();
        os.machine.keyboard.press_at(
            now + alto_sim::SimTime::from_micros(50),
            super::DEBUG_KEY as u8,
        );
        let file = os.run_machine_with_debug(10_000).unwrap();
        assert!(file.is_some(), "DEBUG key should have fired");
        let dbg = SwateeDebugger::open_named(&mut os).unwrap();
        assert_eq!(dbg.ac(2), 0xFEED);
    }

    #[test]
    fn ordinary_keys_do_not_trigger_debug() {
        let mut os = os();
        let code = alto_machine::assemble("inten\nspin: jmp spin").unwrap();
        os.machine.load_program(0o400, &code.words).unwrap();
        let now = os.machine.clock().now();
        os.machine
            .keyboard
            .press_at(now + alto_sim::SimTime::from_micros(50), b'x');
        let err = os.run_machine_with_debug(5_000);
        assert!(matches!(
            err,
            Err(OsError::Machine(
                alto_machine::MachineError::BudgetExhausted
            ))
        ));
        // The ordinary key is still queued for the program.
        assert_eq!(os.get_char(), Some(b'x'));
    }
}
