//! The install phase: hint state files (§3.6).
//!
//! "Many programs use a collection of auxiliary files to which they need
//! rapid access … When these programs are 'installed', they create the
//! necessary files and store hints for them in a data structure that is
//! then written onto a state file. Subsequently the program can start up,
//! read the state file, and access all its auxiliary files at maximum disk
//! speed. If a hint fails … the program must repeat the installation
//! phase."
//!
//! Unlike the 1979 programs the paper chides for crashing with "Hint
//! failed, please reinstall", [`AltoOs::load_hints`] climbs the recovery
//! ladder automatically and only reinstalls as the true last resort.

use alto_disk::Disk;
use alto_fs::hints::PageHints;
use alto_fs::names::FileFullName;
use alto_fs::{dir, FsError};

use crate::errors::OsError;
use crate::os::AltoOs;

/// Magic word identifying a hint state file.
const MAGIC: u16 = 0xA514;

impl<D: Disk> AltoOs<D> {
    /// Installs a program's auxiliary files: ensures each named file
    /// exists in the root directory, walks it to gather every-`k`-th-page
    /// hints, and writes all the hints to `state_name`.
    pub fn install_hints(
        &mut self,
        state_name: &str,
        names: &[&str],
        k: u16,
    ) -> Result<FileFullName, OsError> {
        let root = self.fs.root_dir();
        let mut words = vec![MAGIC, names.len() as u16];
        for name in names {
            if dir::lookup(&mut self.fs, root, name)?.is_none() {
                dir::create_named_file(&mut self.fs, root, name)?;
            }
            let hints = PageHints::install(&mut self.fs, root, name, k)?;
            let encoded = hints.encode();
            words.push(encoded.len() as u16);
            words.extend_from_slice(&encoded);
        }
        let bytes = alto_fs::file::words_to_bytes(&words);
        let state = match dir::lookup(&mut self.fs, root, state_name)? {
            Some(f) => f,
            None => dir::create_named_file(&mut self.fs, root, state_name)?,
        };
        self.fs.write_file(state, &bytes)?;
        Ok(state)
    }

    /// Reads a hint state file back. Returns the hints in install order.
    pub fn load_hints(&mut self, state_name: &str) -> Result<Vec<PageHints>, OsError> {
        let root = self.fs.root_dir();
        let state = dir::lookup(&mut self.fs, root, state_name)?
            .ok_or_else(|| OsError::Fs(FsError::NameNotFound(state_name.to_string())))?;
        let bytes = self.fs.read_file(state)?;
        let words = alto_fs::file::bytes_to_words(&bytes);
        if words.first() != Some(&MAGIC) {
            return Err(OsError::Fs(FsError::NotFormatted("not a hint state file")));
        }
        let count = *words.get(1).unwrap_or(&0) as usize;
        let mut out = Vec::with_capacity(count);
        let mut i = 2usize;
        for _ in 0..count {
            let len = *words
                .get(i)
                .ok_or(OsError::Fs(FsError::NotFormatted("hint state truncated")))?
                as usize;
            i += 1;
            let slice = words
                .get(i..i + len)
                .ok_or(OsError::Fs(FsError::NotFormatted("hint state truncated")))?;
            out.push(
                PageHints::decode(slice)
                    .ok_or(OsError::Fs(FsError::NotFormatted("bad hint record")))?,
            );
            i += len;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alto_disk::{DiskAddress, DiskDrive, DiskModel};
    use alto_fs::hints::{resolve_page, HintOutcome, HintStats};
    use alto_machine::Machine;
    use alto_sim::{SimClock, Trace};

    fn os() -> AltoOs {
        let clock = SimClock::new();
        let trace = Trace::new();
        let machine = Machine::new(clock.clone(), trace.clone());
        let drive = DiskDrive::with_formatted_pack(clock, trace, DiskModel::Diablo31, 1);
        AltoOs::install(machine, drive).unwrap()
    }

    #[test]
    fn install_creates_files_and_state() {
        let mut os = os();
        os.install_hints("Editor.state", &["scratch1", "scratch2", "journal"], 4)
            .unwrap();
        let root = os.fs.root_dir();
        for name in ["scratch1", "scratch2", "journal", "Editor.state"] {
            assert!(
                dir::lookup(&mut os.fs, root, name).unwrap().is_some(),
                "{name}"
            );
        }
        let hints = os.load_hints("Editor.state").unwrap();
        assert_eq!(hints.len(), 3);
        assert_eq!(hints[0].name, "scratch1");
    }

    #[test]
    fn hints_give_direct_access_after_reload() {
        let mut os = os();
        // Create a multi-page auxiliary file first.
        let root = os.fs.root_dir();
        let f = dir::create_named_file(&mut os.fs, root, "journal").unwrap();
        os.fs.write_file(f, &vec![9u8; 3000]).unwrap();
        os.install_hints("Editor.state", &["journal"], 2).unwrap();

        // "Start up": read the state file and access page 4 directly.
        let mut hints = os.load_hints("Editor.state").unwrap().remove(0);
        let mut stats = HintStats::default();
        let da = hints
            .every_kth
            .iter()
            .find(|(p, _)| *p == 4)
            .map(|(_, da)| *da)
            .unwrap();
        let (_, _, outcome) = resolve_page(&mut os.fs, &mut hints, 4, da, &mut stats).unwrap();
        assert_eq!(outcome, HintOutcome::DirectHit);
    }

    #[test]
    fn stale_hints_recover_instead_of_demanding_reinstall() {
        let mut os = os();
        let root = os.fs.root_dir();
        let f = dir::create_named_file(&mut os.fs, root, "scratch").unwrap();
        os.fs.write_file(f, &vec![1u8; 2000]).unwrap();
        os.install_hints("Prog.state", &["scratch"], 0).unwrap();

        // The scratch file gets deleted and recreated (new FV): every
        // stored hint is now stale.
        let mut hints = os.load_hints("Prog.state").unwrap().remove(0);
        dir::remove(&mut os.fs, root, "scratch").unwrap();
        os.fs.delete_file(f).unwrap();
        let g = dir::create_named_file(&mut os.fs, root, "scratch").unwrap();
        os.fs.write_file(g, &vec![2u8; 2000]).unwrap();

        let mut stats = HintStats::default();
        let (data, _, outcome) =
            resolve_page(&mut os.fs, &mut hints, 1, DiskAddress::NIL, &mut stats).unwrap();
        assert_eq!(outcome, HintOutcome::StringLookup);
        assert_eq!(data[0], 0x0202); // the new file's bytes
    }

    #[test]
    fn bad_state_file_is_rejected() {
        let mut os = os();
        let root = os.fs.root_dir();
        let f = dir::create_named_file(&mut os.fs, root, "junk.state").unwrap();
        os.fs.write_file(f, b"not hints").unwrap();
        assert!(os.load_hints("junk.state").is_err());
        assert!(os.load_hints("missing.state").is_err());
    }
}
