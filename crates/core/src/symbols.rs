//! The operating-system procedure table and trap stubs (§5.1).
//!
//! Each OS procedure is reachable from machine code through a two-word
//! stub in its level's memory region:
//!
//! ```text
//! stub:   TRAP 0, code     ; enter the resident system
//!         JMP 0,3          ; return to the caller (JSR left it in AC3)
//! ```
//!
//! The loader patches user code's fixup words with stub addresses; user
//! programs then call `JSR @word`. Because the stubs live inside level
//! regions, `Junta` genuinely removes them: the words are freed and any
//! stale call lands in reclaimed storage.

use std::collections::BTreeMap;
use std::collections::HashMap;

use alto_machine::instr::{Index, Instr, MemFn};
use alto_sim::Memory;

use crate::errors::OsError;
use crate::levels::LevelTable;
use crate::syscalls::ALL_CALLS;

/// Words per stub.
pub const STUB_WORDS: u16 = 2;

/// The symbol table: OS procedure name → stub address.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    stubs: BTreeMap<&'static str, u16>,
}

impl SymbolTable {
    /// Writes every call's stub into its level's region and returns the
    /// table. Stubs are packed from each region's base upward.
    pub fn install(mem: &mut Memory, levels: &LevelTable) -> SymbolTable {
        let mut next_slot: HashMap<u8, u16> = HashMap::new();
        let mut stubs = BTreeMap::new();
        for call in ALL_CALLS {
            let level = levels
                .level(call.level())
                .expect("syscall levels are valid");
            let slot = next_slot.entry(level.number).or_insert(level.base);
            let addr = *slot;
            *slot += STUB_WORDS;
            debug_assert!(
                *slot as u32 <= level.base as u32 + level.words as u32,
                "stub area overflow"
            );
            let trap = Instr::Trap {
                ac: 0,
                code: call.code(),
            }
            .encode();
            let ret = Instr::Mem {
                func: MemFn::Jmp,
                indirect: false,
                index: Index::Ac3Relative,
                disp: 0,
            }
            .encode();
            mem.write(addr, trap);
            mem.write(addr + 1, ret);
            stubs.insert(call.symbol(), addr);
        }
        SymbolTable { stubs }
    }

    /// The stub address for a symbol.
    pub fn resolve(&self, symbol: &str) -> Result<u16, OsError> {
        self.stubs
            .get(symbol)
            .copied()
            .ok_or_else(|| OsError::UnboundSymbol(symbol.to_string()))
    }

    /// All known symbols (for diagnostics).
    pub fn symbols(&self) -> impl Iterator<Item = (&'static str, u16)> + '_ {
        self.stubs.iter().map(|(k, v)| (*k, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stubs_land_in_their_levels() {
        let mut mem = Memory::new();
        let levels = LevelTable::new();
        let table = SymbolTable::install(&mut mem, &levels);
        for call in ALL_CALLS {
            let addr = table.resolve(call.symbol()).unwrap();
            let level = levels.level(call.level()).unwrap();
            assert!(
                addr >= level.base && (addr as u32) < level.base as u32 + level.words as u32,
                "{} stub at {addr:#x} outside level {}",
                call.symbol(),
                level.number
            );
            // The stub is a trap followed by a return.
            match Instr::decode(mem.read(addr)) {
                Instr::Trap { code, .. } => assert_eq!(code, call.code()),
                other => panic!("stub starts with {other:?}"),
            }
            match Instr::decode(mem.read(addr + 1)) {
                Instr::Mem {
                    func: MemFn::Jmp,
                    index: Index::Ac3Relative,
                    disp: 0,
                    ..
                } => {}
                other => panic!("stub ends with {other:?}"),
            }
        }
    }

    #[test]
    fn stubs_do_not_collide() {
        let mut mem = Memory::new();
        let table = SymbolTable::install(&mut mem, &LevelTable::new());
        let mut addrs: Vec<u16> = table.symbols().map(|(_, a)| a).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), ALL_CALLS.len());
    }

    #[test]
    fn unknown_symbol_is_an_error() {
        let mut mem = Memory::new();
        let table = SymbolTable::install(&mut mem, &LevelTable::new());
        assert!(matches!(
            table.resolve("NoSuchProcedure"),
            Err(OsError::UnboundSymbol(_))
        ));
    }
}
