//! The keyboard process as machine code (§2).
//!
//! "The current version of the system has only two processes, one of which
//! puts keyboard input characters into a buffer, while the other does all
//! the interesting work. The keyboard process is interrupt-driven and has
//! no critical sections."
//!
//! By default the keyboard process is served in Rust
//! ([`AltoOs::service_keyboard`]); this module makes the two-process
//! structure literal: [`AltoOs::install_vm_keyboard_isr`] assembles a real
//! interrupt service routine, places it in the top of the system free
//! storage region (level 13), and points the interrupt vector (location 1)
//! at it. From then on the *machine* delivers keyboard interrupts to the
//! ISR, which drains the device with `KBDGET` and pushes into the level-2
//! type-ahead ring buffer — with no Rust involvement at all.
//!
//! A program that `Junta`s below level 13 frees the ISR's storage while
//! the vector still points there; like the 1979 system, such a program has
//! taken responsibility for the keyboard and must clear the vector or
//! install its own handler (see
//! [`AltoOs::remove_vm_keyboard_isr`]).

use alto_disk::Disk;

use crate::errors::OsError;
use crate::os::AltoOs;

/// Words reserved for the ISR at the top of the level-13 region.
pub const ISR_WORDS: u16 = 48;

impl<D: Disk> AltoOs<D> {
    /// The address the VM keyboard ISR is installed at.
    pub fn vm_isr_base(&self) -> u16 {
        let l13 = self.levels().level(13).expect("level 13 exists");
        l13.base + l13.words - ISR_WORDS
    }

    /// Installs the machine-code keyboard ISR and arms the interrupt
    /// vector. Keys struck from now on flow into the type-ahead buffer
    /// entirely in machine code.
    pub fn install_vm_keyboard_isr(&mut self) -> Result<u16, OsError> {
        let l2 = self.levels().level(2).expect("level 2 exists");
        // Ring layout (see `typeahead`): head, tail, capacity, data…
        let head_addr = l2.base;
        let tail_addr = l2.base + 1;
        let cap = l2.words - 3;
        let data_addr = l2.base + 3;
        let isr_base = self.vm_isr_base();

        let source = format!(
            "
            .org {isr_base}
isr:        sta 0, sv0
            sta 1, sv1
            sta 2, sv2
poll:       kbdget              ; AC0 = key or 0xFFFF
            lda 1, eofv
            sub# 1, 0, snr      ; skip while a key is present
            jmp done
            ; data[tail] = key
            lda 1, @tailp       ; AC1 = tail
            lda 2, datap
            add 1, 2            ; AC2 = data + tail
            sta 0, 0,2
            ; next = tail + 1, wrapping at the capacity
            inc 1, 1
            lda 2, capv
            sub# 2, 1, snr      ; skip unless next == capacity
            subz 1, 1           ; wrap to 0
            ; full? (next == head): drop the key, tail unchanged
            lda 2, @headp
            sub# 2, 1, snr      ; skip unless next == head
            jmp poll
            sta 1, @tailp
            jmp poll
done:       lda 0, sv0
            lda 1, sv1
            lda 2, sv2
            reti
sv0:        .word 0
sv1:        .word 0
sv2:        .word 0
eofv:       .word 0xFFFF
headp:      .word {head_addr}
tailp:      .word {tail_addr}
datap:      .word {data_addr}
capv:       .word {cap}
            "
        );
        let assembled = alto_machine::assemble(&source)?;
        debug_assert!(assembled.words.len() <= ISR_WORDS as usize);
        self.machine
            .mem
            .write_block(isr_base, &assembled.words)
            .expect("ISR region is in range");
        self.machine.mem.write(1, isr_base); // interrupt vector
        self.machine.int_enabled = true;
        Ok(isr_base)
    }

    /// Clears the interrupt vector: the keyboard process reverts to the
    /// Rust-served path (a program about to `Junta` away level 13 calls
    /// this first, unless it installs its own handler).
    pub fn remove_vm_keyboard_isr(&mut self) {
        self.machine.mem.write(1, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alto_disk::{DiskDrive, DiskModel};
    use alto_machine::Machine;
    use alto_sim::{SimClock, SimTime, Trace};

    fn os() -> AltoOs {
        let clock = SimClock::new();
        let machine = Machine::new(clock.clone(), Trace::new());
        let drive = DiskDrive::with_formatted_pack(clock, Trace::new(), DiskModel::Diablo31, 1);
        AltoOs::install(machine, drive).unwrap()
    }

    /// Run a do-nothing VM program while keys arrive; the machine-code ISR
    /// must buffer them without any Rust service.
    #[test]
    fn vm_isr_buffers_keys_without_rust() {
        let mut os = os();
        os.install_vm_keyboard_isr().unwrap();
        // A busy main program (counting), interrupts enabled by install.
        let code = alto_machine::assemble(
            "
main:       isz counter
            jmp main
            jmp main        ; (skip target when counter wraps)
counter:    .word 0
            ",
        )
        .unwrap();
        os.machine.load_program(0o400, &code.words).unwrap();
        // The user types during the computation.
        let t0 = os.machine.clock().now();
        os.machine.keyboard.type_string(
            t0 + SimTime::from_micros(20),
            SimTime::from_micros(40),
            "hi!",
        );
        // Step the raw machine only: no OS trap service, no Rust ISR.
        for _ in 0..2000 {
            match os.machine.step().unwrap() {
                alto_machine::Step::Running => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        // The type-ahead buffer (in simulated memory) holds the keys.
        assert_eq!(os.get_char(), Some(b'h'));
        assert_eq!(os.get_char(), Some(b'i'));
        assert_eq!(os.get_char(), Some(b'!'));
        assert_eq!(os.get_char(), None);
    }

    #[test]
    fn vm_isr_preserves_the_interrupted_computation() {
        let mut os = os();
        os.install_vm_keyboard_isr().unwrap();
        // Sum 1..=200 with interrupts striking throughout.
        let code = alto_machine::assemble(
            "
            subz 0, 0
            subz 2, 2
loop:       inc 2, 2
            add 2, 0
            lda 1, limit
            sub# 2, 1, szr
            jmp loop
            sta 0, @resp
            halt
limit:      .word 200
resp:       .word 0o3000
            ",
        )
        .unwrap();
        os.machine.load_program(0o400, &code.words).unwrap();
        let t0 = os.machine.clock().now();
        os.machine
            .keyboard
            .type_string(t0, SimTime::from_micros(15), "interrupting cow");
        os.run_machine(100_000).unwrap();
        // The arithmetic is unharmed (ISR saves/restores the ACs)…
        assert_eq!(os.machine.mem.read(0o3000), (200 * 201 / 2) as u16);
        // …and every key was buffered.
        let mut typed = String::new();
        while let Some(c) = os.get_char() {
            typed.push(c as char);
        }
        assert_eq!(typed, "interrupting cow");
    }

    #[test]
    fn vm_isr_drops_keys_when_the_ring_fills() {
        let mut os = os();
        os.install_vm_keyboard_isr().unwrap();
        let code = alto_machine::assemble("spin: jmp spin").unwrap();
        os.machine.load_program(0o400, &code.words).unwrap();
        // The ring holds capacity-1 = 124 keys; type 200.
        let t0 = os.machine.clock().now();
        for i in 0..200u16 {
            os.machine.keyboard.press_at(
                t0 + SimTime::from_micros(10 + i as u64 * 10),
                b'a' + (i % 26) as u8,
            );
        }
        for _ in 0..30_000 {
            let _ = os.machine.step().unwrap();
        }
        let mut got = 0;
        while os.get_char().is_some() {
            got += 1;
        }
        assert_eq!(got, 124, "ring holds exactly capacity-1 keys");
    }

    #[test]
    fn remove_returns_control_to_rust() {
        let mut os = os();
        os.install_vm_keyboard_isr().unwrap();
        os.remove_vm_keyboard_isr();
        os.type_text("z");
        os.machine.clock().advance(SimTime::from_millis(5));
        // Rust service path works again.
        assert_eq!(os.get_char(), Some(b'z'));
    }
}
