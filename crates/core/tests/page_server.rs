//! End-to-end page-server tests (§5.2): a fleet of scripted diskless
//! clients against `PageServer` + `FsPageService` over the shared ether.
//!
//! Covers the tentpole wiring (batched cross-client service, zero-copy
//! replies) plus the loss-recovery requirement: a run under packet loss
//! must serve byte-for-byte what the lossless run serves, recovered
//! entirely by client retransmission against the idempotent server.

use alto_disk::{DiskDrive, DiskModel};
use alto_fs::file::PAGE_BYTES;
use alto_fs::{dir, FileSystem, PageName};
use alto_net::server::{
    encode_name, PageRequest, PageStore, ERR_REPLY, OPEN_REQUEST, PAGE_SERVICE_SOCKET,
    READ_REQUEST, STATUS_BAD_HANDLE, STATUS_BAD_PAGE,
};
use alto_net::{ClientConfig, ClientFleet, ClientPhase, Ether, Packet, PageServer};
use alto_os::FsPageService;
use alto_sim::{SimClock, SimTime, Trace};

/// Deterministic content for file `f`: `pages` full-ish pages.
fn file_bytes(f: usize, pages: usize) -> Vec<u8> {
    let len = pages * PAGE_BYTES - 100; // short last page
    (0..len).map(|i| (i * 31 + f * 7) as u8).collect()
}

struct RunResult {
    digest: u64,
    served_words: u64,
    done: u64,
    failed: u64,
    retransmits: u64,
    served: u64,
    batches: u64,
    elapsed: SimTime,
    p99_samples: usize,
}

/// Builds a disk with `files` files of `pages` pages each, then runs
/// `clients` scripted clients to completion and returns what they saw.
fn run(
    clients: usize,
    files: usize,
    pages: usize,
    loss: Option<(u64, u64, u64)>,
    batching: bool,
) -> RunResult {
    let clock = SimClock::new();
    let trace = Trace::new();
    trace.set_enabled(false);
    let drive = DiskDrive::with_formatted_pack(clock.clone(), trace.clone(), DiskModel::Trident, 1);
    let mut fs = FileSystem::format(drive).expect("format");
    let root = fs.root_dir();
    let names: Vec<String> = (0..files).map(|f| format!("load{f}.dat")).collect();
    for (f, name) in names.iter().enumerate() {
        let file = dir::create_named_file(&mut fs, root, name).expect("create");
        fs.write_file(file, &file_bytes(f, pages)).expect("write");
    }

    let mut ether = Ether::new(clock.clone(), trace);
    ether.attach(1).expect("server host");
    if let Some((num, denom, seed)) = loss {
        ether.set_loss(num, denom, seed);
    }
    let mut server = PageServer::new(1);
    server.set_batching_enabled(batching);
    let cfg = ClientConfig::new(1, PAGE_SERVICE_SOCKET);
    let mut fleet =
        ClientFleet::new(&mut ether, cfg, clients, |i| names[i % files].clone()).expect("fleet");
    let mut service = FsPageService::new(&mut fs);

    let start = clock.now();
    let mut spins = 0u64;
    while !fleet.all_done() {
        let a = fleet.tick(&mut ether).expect("fleet tick");
        let b = server.tick(&mut ether, &mut service).expect("server tick");
        if a + b == 0 {
            ether.idle_wait(SimTime::from_millis(1));
        }
        spins += 1;
        assert!(spins < 2_000_000, "run did not converge");
    }
    let stats = fleet.stats();
    RunResult {
        digest: fleet.digest(),
        served_words: stats.served_words,
        done: stats.done,
        failed: stats.failed,
        retransmits: stats.retransmits,
        served: server.stats.served,
        batches: server.stats.batches,
        elapsed: clock.now().saturating_sub(start),
        p99_samples: fleet.samples.len(),
    }
}

#[test]
fn a_single_client_receives_exact_file_contents() {
    let r = run(1, 1, 3, None, true);
    assert_eq!(r.done, 1);
    assert_eq!(r.failed, 0);
    // The client folds every served word with the same commutative rule we
    // can apply to the file image directly: page data is the file's bytes
    // packed big-endian, zero-padded to a full sector.
    let bytes = file_bytes(0, 3);
    let mut expected = 0u64;
    for page in 1..=3u64 {
        let lo = (page as usize - 1) * PAGE_BYTES;
        let hi = (lo + PAGE_BYTES).min(bytes.len());
        let mut words = alto_fs::file::bytes_to_words(&bytes[lo..hi]);
        words.resize(PAGE_BYTES / 2, 0);
        for (i, &w) in words.iter().enumerate() {
            expected = expected.wrapping_add((page << 32) ^ ((i as u64) << 16) ^ w as u64);
        }
    }
    assert_eq!(r.digest, expected, "served data diverges from the file");
    assert_eq!(r.served_words, 3 * (PAGE_BYTES as u64 / 2));
}

#[test]
fn a_fleet_is_served_completely_and_batched() {
    let r = run(64, 4, 4, None, true);
    assert_eq!(r.done, 64);
    assert_eq!(r.failed, 0);
    assert_eq!(r.served, 64 * 4);
    assert_eq!(r.p99_samples, 64 * 4);
    // Batching must actually coalesce: far fewer store batches than pages.
    assert!(
        r.batches * 4 < r.served,
        "only {} served across {} batches",
        r.served,
        r.batches
    );
}

#[test]
fn naive_ablation_serves_identical_bytes_but_slower() {
    let batched = run(48, 3, 3, None, true);
    let naive = run(48, 3, 3, None, false);
    assert_eq!(naive.done, 48);
    assert_eq!(
        naive.digest, batched.digest,
        "ablation changed served bytes"
    );
    assert_eq!(naive.served_words, batched.served_words);
    // One store batch per request in the ablation.
    assert_eq!(naive.batches, naive.served);
    // And the whole point: batching is strictly faster in simulated time.
    assert!(
        batched.elapsed < naive.elapsed,
        "batched {:?} not faster than naive {:?}",
        batched.elapsed,
        naive.elapsed
    );
}

#[test]
fn packet_loss_recovers_with_zero_served_byte_divergence() {
    let lossless = run(32, 4, 4, None, true);
    // 1-in-6 loss hits both requests and replies (the ether drops either
    // direction); the client cannot tell which was lost and just
    // retransmits — the server's idempotence makes that safe.
    let lossy = run(32, 4, 4, Some((1, 6, 0xA17E)), true);
    assert_eq!(lossy.done, 32);
    assert_eq!(lossy.failed, 0);
    assert!(
        lossy.retransmits > 0,
        "loss run saw no retransmissions — loss not exercised"
    );
    assert_eq!(
        lossy.digest, lossless.digest,
        "served bytes diverged under loss"
    );
    assert_eq!(lossy.served_words, lossless.served_words);
}

#[test]
fn unknown_files_fail_the_client_cleanly() {
    let clock = SimClock::new();
    let trace = Trace::new();
    trace.set_enabled(false);
    let drive =
        DiskDrive::with_formatted_pack(clock.clone(), trace.clone(), DiskModel::Diablo31, 1);
    let mut fs = FileSystem::format(drive).expect("format");
    let mut ether = Ether::new(clock.clone(), trace);
    ether.attach(1).expect("server host");
    let mut server = PageServer::new(1);
    let cfg = ClientConfig::new(1, PAGE_SERVICE_SOCKET);
    let mut fleet =
        ClientFleet::new(&mut ether, cfg, 1, |_| "ghost.dat".to_string()).expect("fleet");
    let mut service = FsPageService::new(&mut fs);
    let mut spins = 0u64;
    while !fleet.all_done() {
        let a = fleet.tick(&mut ether).expect("fleet tick");
        let b = server.tick(&mut ether, &mut service).expect("server tick");
        if a + b == 0 {
            ether.idle_wait(SimTime::from_millis(1));
        }
        spins += 1;
        assert!(spins < 100_000);
    }
    assert_eq!(fleet.client(0).phase(), ClientPhase::Failed);
    assert_eq!(server.stats.errors, 1);
}

/// A formatted Diablo31 with one `pages`-page file named `name`.
fn small_fs(name: &str, pages: usize) -> (FileSystem<DiskDrive>, SimClock) {
    let clock = SimClock::new();
    let trace = Trace::new();
    trace.set_enabled(false);
    let drive = DiskDrive::with_formatted_pack(clock.clone(), trace, DiskModel::Diablo31, 1);
    let mut fs = FileSystem::format(drive).expect("format");
    let root = fs.root_dir();
    let file = dir::create_named_file(&mut fs, root, name).expect("create");
    fs.write_file(file, &file_bytes(0, pages)).expect("write");
    (fs, clock)
}

#[test]
fn hostile_page_requests_fail_with_statuses_not_panics() {
    let (mut fs, _clock) = small_fs("victim.dat", 4);
    let mut service = FsPageService::new(&mut fs);
    let info = service.open("victim.dat").expect("open");
    let reqs = [
        // Forged open id.
        PageRequest {
            open_id: info.open_id + 99,
            page: 1,
            tag: 0,
        },
        // Page 0 is the leader — never served.
        PageRequest {
            open_id: info.open_id,
            page: 0,
            tag: 1,
        },
        // Far past the end of the file.
        PageRequest {
            open_id: info.open_id,
            page: 9999,
            tag: 2,
        },
        // A well-formed request riding in the same hostile batch.
        PageRequest {
            open_id: info.open_id,
            page: 1,
            tag: 3,
        },
    ];
    let mut failed = Vec::new();
    let mut delivered = Vec::new();
    service.serve(&reqs, &mut failed, |tag, _| delivered.push(tag));
    failed.sort_unstable();
    assert_eq!(
        failed,
        vec![
            (0, STATUS_BAD_HANDLE),
            (1, STATUS_BAD_PAGE),
            (2, STATUS_BAD_PAGE)
        ]
    );
    assert_eq!(delivered, vec![3]);
}

#[test]
fn two_sector_loop_fails_the_request_instead_of_hanging() {
    let (mut fs, clock) = small_fs("loop.dat", 4);
    let root = fs.root_dir();
    let file = dir::lookup(&mut fs, root, "loop.dat")
        .expect("lookup")
        .expect("exists");
    // Find the on-disk addresses of data pages 1 and 2 from the labels.
    let (leader_label, _) = fs.open_leader(file).expect("leader");
    let da1 = leader_label.next;
    let (l1, _) = fs.read_page(PageName::new(file.fv, 1, da1)).expect("p1");
    let da2 = l1.next;
    // Tie page 2's next back to page 1: a two-sector loop mid-chain.
    let mut drive = fs.crash();
    {
        let pack = drive.pack_mut().expect("pack");
        let sector = pack.sector_mut(da2).expect("sector");
        let mut label = sector.decoded_label();
        label.next = da1;
        sector.label = label.encode();
    }
    let mut fs = FileSystem::mount(drive).expect("mount");
    let mut service = FsPageService::new(&mut fs);
    let start = clock.now();
    // Opening sizes the file by walking to its last page; on the looped
    // chain that must surface a status (bounded walk), not spin. If some
    // future sizing path tolerates the loop, serving past it must fail
    // per-request the same way.
    if let Ok(info) = service.open("loop.dat") {
        let reqs = [PageRequest {
            open_id: info.open_id,
            page: info.pages,
            tag: 0,
        }];
        let mut failed = Vec::new();
        let mut delivered = 0u32;
        service.serve(&reqs, &mut failed, |_, _| delivered += 1);
        assert_eq!(failed.len() as u32 + delivered, 1);
    }
    // The §3.3 checks make every bounded walk cheap; anything past a few
    // simulated seconds would mean the walk was not bounded at all.
    let elapsed = clock.now().saturating_sub(start);
    assert!(elapsed < SimTime::from_secs(60), "walk took {elapsed:?}");
}

#[test]
fn malformed_open_and_read_packets_get_error_replies() {
    let (mut fs, clock) = small_fs("served.dat", 2);
    let trace = Trace::new();
    trace.set_enabled(false);
    let mut ether = Ether::new(clock, trace);
    ether.attach(1).expect("server host");
    ether.attach(2).expect("client host");
    let mut server = PageServer::new(1);
    let mut service = FsPageService::new(&mut fs);

    let send = |ether: &mut Ether, ptype, payload: Vec<u16>, seq| {
        let pkt = Packet {
            ptype,
            dst_host: 1,
            src_host: 2,
            dst_socket: PAGE_SERVICE_SOCKET,
            src_socket: 0o100,
            seq,
            payload,
        };
        ether.send(pkt).expect("send");
    };

    // A valid open first, so bad reads below have a session to land in.
    let mut name = Vec::new();
    encode_name("served.dat", &mut name);
    send(&mut ether, OPEN_REQUEST, name, 0);
    // Hostile opens: empty payload, declared length past the words
    // supplied, invalid UTF-8 in the name bytes.
    send(&mut ether, OPEN_REQUEST, vec![], 1);
    send(&mut ether, OPEN_REQUEST, vec![500, 0x4141], 2);
    send(&mut ether, OPEN_REQUEST, vec![2, 0xFFFE], 3);
    // Hostile reads: mis-sized payload, forged handle, page 0, page past
    // the end of the open file.
    send(&mut ether, READ_REQUEST, vec![0, 1, 2], 4);
    send(&mut ether, READ_REQUEST, vec![77, 1], 5);
    send(&mut ether, READ_REQUEST, vec![0, 0], 6);
    send(&mut ether, READ_REQUEST, vec![0, 999], 7);

    for _ in 0..8 {
        server.tick(&mut ether, &mut service).expect("tick");
        ether.idle_wait(SimTime::from_millis(1));
    }
    assert_eq!(server.stats.errors, 7);
    // Every hostile request was answered with ERR_REPLY — the client is
    // told, not timed out.
    let mut errs = 0;
    while let Some(pkt) = ether.receive(2, 0o100).expect("recv") {
        if pkt.ptype == ERR_REPLY {
            errs += 1;
        }
    }
    assert_eq!(errs, 7);
}
