//! Storage zones: the Alto OS free-storage allocator (§2, §5).
//!
//! A *zone* is an abstract object that acquires and releases working
//! storage. "The storage allocator … will build zone objects to allocate
//! any part of memory, whether in the system free storage region or not"
//! (§5.2): a [`FirstFitZone`] manages any word range of the simulated 64K
//! memory, with its block headers kept *inside* that memory, exactly as the
//! BCPL original did. Zones nest — a block allocated from one zone can be
//! managed as another zone — and system components take the zone to use as
//! a parameter (the disk-stream constructor of §2 takes "a zone object
//! which is used to acquire and release working storage").
//!
//! [`Zone`] is the abstract object; [`FirstFitZone`] the standard concrete
//! implementation; [`CheckingZone`] a debugging implementation that poisons
//! freed storage and catches double frees, demonstrating the multiple-
//! implementation openness of §2.

#![forbid(unsafe_code)]

pub mod checking;
pub mod errors;
pub mod first_fit;

pub use checking::CheckingZone;
pub use errors::ZoneError;
pub use first_fit::{FirstFitZone, ZoneStats};

use alto_sim::Memory;

/// The abstract zone object: allocate and free working storage.
///
/// Addresses are word addresses in the simulated memory; `free` must be
/// given an address previously returned by `allocate` on the same zone.
pub trait Zone {
    /// Allocates a block of `words` words, returning its address.
    fn allocate(&mut self, mem: &mut Memory, words: u16) -> Result<u16, ZoneError>;

    /// Frees a block previously allocated from this zone.
    fn free(&mut self, mem: &mut Memory, addr: u16) -> Result<(), ZoneError>;

    /// Words currently available (an upper bound on the largest request
    /// that could possibly succeed, ignoring fragmentation).
    fn available(&self) -> u16;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trait is object-safe: zones are passed around as values, like
    /// the one-word BCPL object handles.
    #[test]
    fn zone_trait_is_object_safe() {
        let mut mem = Memory::new();
        let mut zone: Box<dyn Zone> = Box::new(FirstFitZone::new(&mut mem, 0x1000, 0x100).unwrap());
        let a = zone.allocate(&mut mem, 10).unwrap();
        zone.free(&mut mem, a).unwrap();
    }
}
