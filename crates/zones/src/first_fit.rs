//! The standard first-fit zone.
//!
//! Block format inside the managed region (all word addresses):
//!
//! ```text
//! header word:  [allocated flag (bit 15) | block size in words incl. header]
//! free blocks additionally use their first body word as the next-free link
//! (0 = end of list).
//! ```
//!
//! The free list is kept sorted by address so that adjacent free blocks can
//! be coalesced on free, which keeps fragmentation bounded for the
//! stack-like allocation patterns of the system packages.

use alto_sim::Memory;

use crate::errors::ZoneError;
use crate::Zone;

const ALLOCATED: u16 = 0x8000;
const SIZE_MASK: u16 = 0x7FFF;
/// Smallest block: header + one body word (a free block needs the body word
/// for its next link).
const MIN_BLOCK: u16 = 2;

/// Allocation statistics for a zone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZoneStats {
    /// Successful allocations.
    pub allocations: u64,
    /// Successful frees.
    pub frees: u64,
    /// Blocks split during allocation.
    pub splits: u64,
    /// Coalesces performed during free.
    pub coalesces: u64,
    /// Allocation failures (out of space).
    pub failures: u64,
}

/// The standard first-fit free-storage zone.
///
/// # Examples
///
/// ```
/// use alto_sim::Memory;
/// use alto_zones::{FirstFitZone, Zone};
///
/// let mut mem = Memory::new();
/// let mut zone = FirstFitZone::new(&mut mem, 0x1000, 0x400)?;
/// let block = zone.allocate(&mut mem, 32)?;
/// mem.write(block, 42);
/// zone.free(&mut mem, block)?;
/// # Ok::<(), alto_zones::ZoneError>(())
/// ```
#[derive(Debug)]
pub struct FirstFitZone {
    base: u16,
    len: u16,
    /// Address of the first free block, 0 = none. (Address 0 can never be a
    /// block because zones never manage page zero — it holds the machine's
    /// reserved locations.)
    free_head: u16,
    available: u16,
    stats: ZoneStats,
}

impl FirstFitZone {
    /// Builds a zone managing `[base, base + len)`, initializing its free
    /// list inside the memory.
    ///
    /// The region must not include address 0 (reserved) and must be at
    /// least `MIN_BLOCK` (2) + 1 words.
    pub fn new(mem: &mut Memory, base: u16, len: u16) -> Result<FirstFitZone, ZoneError> {
        if base == 0
            || len < MIN_BLOCK + 1
            || (base as u32 + len as u32) > (1 << 16)
            || len & ALLOCATED != 0
        {
            return Err(ZoneError::BadRegion { base, len });
        }
        mem.write(base, len & SIZE_MASK); // one big free block
        mem.write(base + 1, 0); // no next
        Ok(FirstFitZone {
            base,
            len,
            free_head: base,
            available: len,
            stats: ZoneStats::default(),
        })
    }

    /// The managed region.
    pub fn region(&self) -> (u16, u16) {
        (self.base, self.len)
    }

    /// Allocation statistics.
    pub fn stats(&self) -> ZoneStats {
        self.stats
    }

    /// True if `addr` (a body address) lies within the managed region.
    fn contains_block(&self, header: u16) -> bool {
        header >= self.base && (header as u32) < self.base as u32 + self.len as u32
    }

    /// Walks the free list calling `f(prev_link_addr_or_none, block)`.
    fn find_fit(&self, mem: &Memory, want: u16) -> Option<(Option<u16>, u16)> {
        let mut prev: Option<u16> = None;
        let mut cur = self.free_head;
        while cur != 0 {
            let size = mem.read(cur) & SIZE_MASK;
            if size >= want {
                return Some((prev, cur));
            }
            prev = Some(cur);
            cur = mem.read(cur + 1);
        }
        None
    }

    /// Verifies and returns the size of an allocated block's header.
    fn allocated_size(&self, mem: &Memory, header: u16) -> Result<u16, ZoneError> {
        if !self.contains_block(header) {
            return Err(ZoneError::BadPointer(header + 1));
        }
        let word = mem.read(header);
        if word & ALLOCATED == 0 {
            return Err(ZoneError::DoubleFree(header + 1));
        }
        let size = word & SIZE_MASK;
        if size < MIN_BLOCK || !self.contains_block(header + size - 1) {
            return Err(ZoneError::Corrupt {
                addr: header,
                what: "allocated header has impossible size",
            });
        }
        Ok(size)
    }
}

impl Zone for FirstFitZone {
    fn allocate(&mut self, mem: &mut Memory, words: u16) -> Result<u16, ZoneError> {
        // Total block = request + header, padded up to the minimum.
        let want = (words + 1).max(MIN_BLOCK);
        let Some((prev, block)) = self.find_fit(mem, want) else {
            self.stats.failures += 1;
            return Err(ZoneError::OutOfSpace {
                requested: words,
                available: self.available,
            });
        };
        let size = mem.read(block) & SIZE_MASK;
        let next = mem.read(block + 1);
        let (used, leftover) = if size - want >= MIN_BLOCK {
            self.stats.splits += 1;
            (want, size - want)
        } else {
            (size, 0)
        };
        let replacement = if leftover > 0 {
            let rest = block + used;
            mem.write(rest, leftover);
            mem.write(rest + 1, next);
            rest
        } else {
            next
        };
        match prev {
            Some(p) => mem.write(p + 1, replacement),
            None => self.free_head = replacement,
        }
        mem.write(block, used | ALLOCATED);
        self.available -= used;
        self.stats.allocations += 1;
        Ok(block + 1)
    }

    fn free(&mut self, mem: &mut Memory, addr: u16) -> Result<(), ZoneError> {
        let header = addr.wrapping_sub(1);
        let size = self.allocated_size(mem, header)?;
        // Insert into the address-ordered free list, coalescing neighbours.
        let mut prev: Option<u16> = None;
        let mut cur = self.free_head;
        while cur != 0 && cur < header {
            prev = Some(cur);
            cur = mem.read(cur + 1);
        }
        if cur == header {
            return Err(ZoneError::DoubleFree(addr));
        }
        let mut start = header;
        let mut total = size;
        // Coalesce with the following free block.
        if cur != 0 && header + size == cur {
            total += mem.read(cur) & SIZE_MASK;
            cur = mem.read(cur + 1);
            self.stats.coalesces += 1;
        }
        // Coalesce with the preceding free block.
        if let Some(p) = prev {
            let p_size = mem.read(p) & SIZE_MASK;
            if p + p_size == header {
                start = p;
                total += p_size;
                self.stats.coalesces += 1;
                // `p`'s predecessor keeps pointing at `p` == start.
                mem.write(start, total);
                mem.write(start + 1, cur);
                self.available += size;
                self.stats.frees += 1;
                return Ok(());
            }
        }
        mem.write(start, total);
        mem.write(start + 1, cur);
        match prev {
            Some(p) => mem.write(p + 1, start),
            None => self.free_head = start,
        }
        self.available += size;
        self.stats.frees += 1;
        Ok(())
    }

    fn available(&self) -> u16 {
        self.available
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(len: u16) -> (Memory, FirstFitZone) {
        let mut mem = Memory::new();
        let zone = FirstFitZone::new(&mut mem, 0x1000, len).unwrap();
        (mem, zone)
    }

    #[test]
    fn allocate_and_write() {
        let (mut mem, mut zone) = setup(256);
        let a = zone.allocate(&mut mem, 10).unwrap();
        let b = zone.allocate(&mut mem, 20).unwrap();
        assert_ne!(a, b);
        // Blocks do not overlap.
        for i in 0..10 {
            mem.write(a + i, 0xAAAA);
        }
        for i in 0..20 {
            mem.write(b + i, 0xBBBB);
        }
        assert_eq!(mem.read(a), 0xAAAA);
        assert_eq!(mem.read(a + 9), 0xAAAA);
        assert_eq!(mem.read(b), 0xBBBB);
    }

    #[test]
    fn free_and_reuse() {
        let (mut mem, mut zone) = setup(64);
        let a = zone.allocate(&mut mem, 20).unwrap();
        zone.free(&mut mem, a).unwrap();
        let b = zone.allocate(&mut mem, 20).unwrap();
        assert_eq!(a, b, "freed space is reused first-fit");
    }

    #[test]
    fn exhaustion_and_recovery() {
        let (mut mem, mut zone) = setup(64);
        let mut blocks = Vec::new();
        loop {
            match zone.allocate(&mut mem, 6) {
                Ok(a) => blocks.push(a),
                Err(ZoneError::OutOfSpace { .. }) => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert!(!blocks.is_empty());
        assert!(zone.stats().failures >= 1);
        for b in blocks.drain(..) {
            zone.free(&mut mem, b).unwrap();
        }
        // Fully coalesced: one big allocation works again.
        let big = zone.allocate(&mut mem, 60).unwrap();
        zone.free(&mut mem, big).unwrap();
    }

    #[test]
    fn coalescing_left_and_right() {
        let (mut mem, mut zone) = setup(256);
        let a = zone.allocate(&mut mem, 10).unwrap();
        let b = zone.allocate(&mut mem, 10).unwrap();
        let c = zone.allocate(&mut mem, 10).unwrap();
        let _d = zone.allocate(&mut mem, 10).unwrap();
        // Free a and c (non-adjacent), then b (bridges them).
        zone.free(&mut mem, a).unwrap();
        zone.free(&mut mem, c).unwrap();
        zone.free(&mut mem, b).unwrap();
        assert!(zone.stats().coalesces >= 2);
        // The merged hole fits a block bigger than any single freed one.
        let big = zone.allocate(&mut mem, 30).unwrap();
        assert_eq!(big, a);
    }

    #[test]
    fn double_free_detected() {
        let (mut mem, mut zone) = setup(64);
        let a = zone.allocate(&mut mem, 8).unwrap();
        zone.free(&mut mem, a).unwrap();
        assert_eq!(zone.free(&mut mem, a), Err(ZoneError::DoubleFree(a)));
    }

    #[test]
    fn foreign_pointer_rejected() {
        let (mut mem, mut zone) = setup(64);
        assert_eq!(
            zone.free(&mut mem, 0x2000),
            Err(ZoneError::BadPointer(0x2000))
        );
        assert_eq!(zone.free(&mut mem, 5), Err(ZoneError::BadPointer(5)));
    }

    #[test]
    fn corrupt_header_detected() {
        let (mut mem, mut zone) = setup(64);
        let a = zone.allocate(&mut mem, 8).unwrap();
        mem.write(a - 1, ALLOCATED); // size zero
        assert!(matches!(
            zone.free(&mut mem, a),
            Err(ZoneError::Corrupt { .. })
        ));
    }

    #[test]
    fn bad_regions_rejected() {
        let mut mem = Memory::new();
        assert!(FirstFitZone::new(&mut mem, 0, 100).is_err()); // base 0
        assert!(FirstFitZone::new(&mut mem, 0x1000, 2).is_err()); // too small
        assert!(FirstFitZone::new(&mut mem, 0xFFF0, 0x100).is_err()); // overflow
    }

    #[test]
    fn zones_nest() {
        // A block from one zone becomes another zone: "build zone objects
        // to allocate any part of memory" (§5.2).
        let (mut mem, mut outer) = setup(512);
        let region = outer.allocate(&mut mem, 128).unwrap();
        let mut inner = FirstFitZone::new(&mut mem, region, 128).unwrap();
        let x = inner.allocate(&mut mem, 40).unwrap();
        assert!(x >= region && x < region + 128);
        inner.free(&mut mem, x).unwrap();
        outer.free(&mut mem, region).unwrap();
    }

    #[test]
    fn two_zones_do_not_interfere() {
        let mut mem = Memory::new();
        let mut z1 = FirstFitZone::new(&mut mem, 0x1000, 0x100).unwrap();
        let mut z2 = FirstFitZone::new(&mut mem, 0x2000, 0x100).unwrap();
        let a = z1.allocate(&mut mem, 50).unwrap();
        let b = z2.allocate(&mut mem, 50).unwrap();
        assert!(a < 0x1100 && b >= 0x2000);
        // Cross-freeing is rejected.
        assert!(z1.free(&mut mem, b).is_err());
        z1.free(&mut mem, a).unwrap();
        z2.free(&mut mem, b).unwrap();
    }

    #[test]
    fn available_tracks_usage() {
        let (mut mem, mut zone) = setup(256);
        let before = zone.available();
        let a = zone.allocate(&mut mem, 100).unwrap();
        assert_eq!(zone.available(), before - 101); // header included
        zone.free(&mut mem, a).unwrap();
        assert_eq!(zone.available(), before);
    }

    #[test]
    fn tiny_allocations_are_padded() {
        let (mut mem, mut zone) = setup(64);
        let a = zone.allocate(&mut mem, 0).unwrap();
        let b = zone.allocate(&mut mem, 1).unwrap();
        assert_ne!(a, b);
        zone.free(&mut mem, a).unwrap();
        zone.free(&mut mem, b).unwrap();
    }

    #[test]
    fn whole_region_allocation() {
        let (mut mem, mut zone) = setup(64);
        // The single free block is 64 words; request 63 (64 with header).
        let a = zone.allocate(&mut mem, 63).unwrap();
        assert_eq!(zone.available(), 0);
        assert!(zone.allocate(&mut mem, 1).is_err());
        zone.free(&mut mem, a).unwrap();
        assert_eq!(zone.available(), 64);
    }

    #[test]
    fn stress_random_alloc_free() {
        use alto_sim::SplitMix64;
        let mut mem = Memory::new();
        let mut zone = FirstFitZone::new(&mut mem, 0x1000, 0x4000).unwrap();
        let mut rng = SplitMix64::new(7);
        let mut live: Vec<(u16, u16, u16)> = Vec::new(); // (addr, len, tag)
        for round in 0..2000u32 {
            if rng.chance(3, 5) || live.is_empty() {
                let len = (rng.next_below(64) + 1) as u16;
                if let Ok(a) = zone.allocate(&mut mem, len) {
                    let tag = (round & 0x7FFF) as u16 | 1;
                    for i in 0..len {
                        mem.write(a + i, tag);
                    }
                    live.push((a, len, tag));
                }
            } else {
                let i = rng.next_below(live.len() as u64) as usize;
                let (a, len, tag) = live.swap_remove(i);
                // Contents were never scribbled by other blocks.
                for k in 0..len {
                    assert_eq!(mem.read(a + k), tag, "block {a:#x} corrupted");
                }
                zone.free(&mut mem, a).unwrap();
            }
        }
        // Free everything; the zone must coalesce back to one run.
        for (a, _, _) in live.drain(..) {
            zone.free(&mut mem, a).unwrap();
        }
        assert_eq!(zone.available(), 0x4000);
        let all = zone.allocate(&mut mem, 0x3FFF).unwrap();
        zone.free(&mut mem, all).unwrap();
    }
}
