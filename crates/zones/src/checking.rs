//! A checking/debugging zone implementation.
//!
//! Demonstrates the system's multiple-implementation openness (§2): any
//! number of concrete implementations of an abstract object are possible.
//! `CheckingZone` wraps another zone and adds the runtime checks a BCPL
//! programmer could only dream about: freed storage is poisoned so stale
//! reads are visible, and each block carries guard words that detect
//! off-by-one scribbles when the block is freed.

use alto_sim::Memory;

use crate::errors::ZoneError;
use crate::Zone;

/// Poison written into freed blocks.
pub const POISON: u16 = 0xDEAD;
/// Guard word placed before and after each user block.
const GUARD: u16 = 0xFACE;

/// A zone wrapper that poisons frees and detects boundary scribbles.
#[derive(Debug)]
pub struct CheckingZone<Z: Zone> {
    inner: Z,
    /// Live blocks: (user address as handed out, user length).
    live: Vec<(u16, u16)>,
    /// Guard violations detected so far.
    violations: u64,
}

impl<Z: Zone> CheckingZone<Z> {
    /// Wraps an existing zone.
    pub fn new(inner: Z) -> CheckingZone<Z> {
        CheckingZone {
            inner,
            live: Vec::new(),
            violations: 0,
        }
    }

    /// Number of guard violations detected.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Number of live blocks (leak check).
    pub fn live_blocks(&self) -> usize {
        self.live.len()
    }

    /// The wrapped zone.
    pub fn into_inner(self) -> Z {
        self.inner
    }
}

impl<Z: Zone> Zone for CheckingZone<Z> {
    fn allocate(&mut self, mem: &mut Memory, words: u16) -> Result<u16, ZoneError> {
        // Two extra guard words bracket the user block.
        let raw = self.inner.allocate(mem, words + 2)?;
        mem.write(raw, GUARD);
        mem.write(raw + 1 + words, GUARD);
        let user = raw + 1;
        self.live.push((user, words));
        Ok(user)
    }

    fn free(&mut self, mem: &mut Memory, addr: u16) -> Result<(), ZoneError> {
        let Some(pos) = self.live.iter().position(|(a, _)| *a == addr) else {
            // Not ours (or already freed): let the inner zone produce the
            // precise error for its own pointers, else report bad pointer.
            return Err(ZoneError::BadPointer(addr));
        };
        let (_, words) = self.live.swap_remove(pos);
        let raw = addr - 1;
        if mem.read(raw) != GUARD || mem.read(raw + 1 + words) != GUARD {
            self.violations += 1;
        }
        // Poison the user words so stale pointers read garbage loudly.
        for i in 0..words {
            mem.write(addr + i, POISON);
        }
        self.inner.free(mem, raw)
    }

    fn available(&self) -> u16 {
        self.inner.available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::first_fit::FirstFitZone;

    fn setup() -> (Memory, CheckingZone<FirstFitZone>) {
        let mut mem = Memory::new();
        let zone = FirstFitZone::new(&mut mem, 0x1000, 0x400).unwrap();
        (mem, CheckingZone::new(zone))
    }

    #[test]
    fn normal_use_has_no_violations() {
        let (mut mem, mut zone) = setup();
        let a = zone.allocate(&mut mem, 10).unwrap();
        for i in 0..10 {
            mem.write(a + i, 42);
        }
        zone.free(&mut mem, a).unwrap();
        assert_eq!(zone.violations(), 0);
        assert_eq!(zone.live_blocks(), 0);
    }

    #[test]
    fn freed_memory_is_poisoned() {
        let (mut mem, mut zone) = setup();
        let a = zone.allocate(&mut mem, 4).unwrap();
        mem.write(a, 1234);
        zone.free(&mut mem, a).unwrap();
        assert_eq!(mem.read(a), POISON);
    }

    #[test]
    fn overrun_is_detected_on_free() {
        let (mut mem, mut zone) = setup();
        let a = zone.allocate(&mut mem, 4).unwrap();
        mem.write(a + 4, 0x666); // one past the end: smashes the guard
        zone.free(&mut mem, a).unwrap();
        assert_eq!(zone.violations(), 1);
    }

    #[test]
    fn underrun_is_detected_on_free() {
        let (mut mem, mut zone) = setup();
        let a = zone.allocate(&mut mem, 4).unwrap();
        mem.write(a - 1, 0x666);
        zone.free(&mut mem, a).unwrap();
        assert_eq!(zone.violations(), 1);
    }

    #[test]
    fn double_free_rejected() {
        let (mut mem, mut zone) = setup();
        let a = zone.allocate(&mut mem, 4).unwrap();
        zone.free(&mut mem, a).unwrap();
        assert_eq!(zone.free(&mut mem, a), Err(ZoneError::BadPointer(a)));
    }

    #[test]
    fn leak_check_via_live_blocks() {
        let (mut mem, mut zone) = setup();
        let _leak = zone.allocate(&mut mem, 4).unwrap();
        let b = zone.allocate(&mut mem, 4).unwrap();
        zone.free(&mut mem, b).unwrap();
        assert_eq!(zone.live_blocks(), 1);
    }

    #[test]
    fn checking_zone_is_still_a_zone() {
        // It can be passed wherever the abstract object is expected.
        let (mut mem, zone) = setup();
        let mut boxed: Box<dyn Zone> = Box::new(zone);
        let a = boxed.allocate(&mut mem, 8).unwrap();
        boxed.free(&mut mem, a).unwrap();
    }
}
