//! Zone error types.

use std::fmt;

/// Errors surfaced by zone allocators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoneError {
    /// No free block large enough for the request.
    OutOfSpace {
        /// Words requested.
        requested: u16,
        /// Words available in total (fragmentation may make the request
        /// unsatisfiable even when `available >= requested`).
        available: u16,
    },
    /// The region given to a zone constructor is too small or overflows
    /// the address space.
    BadRegion {
        /// Region base.
        base: u16,
        /// Region length in words.
        len: u16,
    },
    /// The pointer passed to `free` was not allocated from this zone.
    BadPointer(u16),
    /// The block was already free.
    DoubleFree(u16),
    /// A block header was overwritten (the zone's in-memory structures are
    /// corrupt; the BCPL original would have crashed the machine here).
    Corrupt {
        /// Address of the damaged header.
        addr: u16,
        /// What was wrong.
        what: &'static str,
    },
}

impl fmt::Display for ZoneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZoneError::OutOfSpace {
                requested,
                available,
            } => {
                write!(
                    f,
                    "zone out of space: {requested} words requested, {available} available"
                )
            }
            ZoneError::BadRegion { base, len } => {
                write!(f, "bad zone region [{base:#06x}; {len} words]")
            }
            ZoneError::BadPointer(a) => write!(f, "pointer {a:#06x} was not allocated here"),
            ZoneError::DoubleFree(a) => write!(f, "block {a:#06x} freed twice"),
            ZoneError::Corrupt { addr, what } => {
                write!(f, "zone corrupt at {addr:#06x}: {what}")
            }
        }
    }
}

impl std::error::Error for ZoneError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(ZoneError::OutOfSpace {
            requested: 10,
            available: 5
        }
        .to_string()
        .contains("10 words"));
        assert!(ZoneError::BadPointer(0x1234).to_string().contains("0x1234"));
        assert!(ZoneError::DoubleFree(16).to_string().contains("twice"));
        assert!(ZoneError::BadRegion { base: 0, len: 1 }
            .to_string()
            .contains("bad zone"));
        assert!(ZoneError::Corrupt {
            addr: 3,
            what: "size zero"
        }
        .to_string()
        .contains("size zero"));
    }
}
