//! Recycled stream-side page buffers.
//!
//! A [`crate::DiskByteStream`] carries five working vectors: the readahead
//! buffer, the write-behind park list, its drain double-buffer, and the two
//! output vectors for combined drain-and-refill batches. Opening a stream
//! per transfer — the common shape for short-lived clients — used to grow
//! all five from empty every time, which was the last steady allocation
//! source in the streaming wall-clock workloads. The vectors now come from
//! small thread-local free lists, taken at `open` and recycled when the
//! stream is dropped, so a steady open/transfer/close cycle touches the
//! heap zero times.
//!
//! Like [`alto_disk::pool`], this is a host-side optimization only: it
//! never touches the simulated clock or the §3.3 semantics, and recycled
//! vectors are always cleared before reuse. The lists share the disk pool's
//! [`alto_disk::pool::enabled`] ablation gate so the wall-clock benchmark's
//! `pooling` switch measures both layers together.

use std::cell::RefCell;

use alto_disk::{DiskAddress, Label, DATA_WORDS};
use alto_fs::page::PageResult;
use alto_fs::FsError;

/// A prefetched page parked in the readahead buffer.
pub type ReadaheadPage = (u16, DiskAddress, Label, [u16; DATA_WORDS]);

/// A dirty page parked for a delayed write.
pub type ParkedPage = (u16, DiskAddress, [u16; DATA_WORDS]);

/// How many vectors each free list retains per thread. A stream holds two
/// parked-page vectors (the park list and its drain double-buffer) and one
/// of each other kind, so four covers two live streams per thread; anything
/// beyond the cap is simply dropped.
const PER_LIST: usize = 4;

struct FreeLists {
    readahead: Vec<Vec<ReadaheadPage>>,
    parked: Vec<Vec<ParkedPage>>,
    labels: Vec<Vec<Result<Label, FsError>>>,
    reads: Vec<Vec<PageResult>>,
}

thread_local! {
    static LISTS: RefCell<FreeLists> = const {
        RefCell::new(FreeLists {
            readahead: Vec::new(),
            parked: Vec::new(),
            labels: Vec::new(),
            reads: Vec::new(),
        })
    };
}

fn enabled() -> bool {
    alto_disk::pool::enabled()
}

/// An empty readahead buffer, recycled when possible.
pub fn readahead_vec() -> Vec<ReadaheadPage> {
    if !enabled() {
        return Vec::new();
    }
    LISTS
        .with(|l| l.borrow_mut().readahead.pop())
        .unwrap_or_default()
}

/// Returns a readahead buffer to the free list (contents are dropped).
pub fn recycle_readahead(mut v: Vec<ReadaheadPage>) {
    if !enabled() || v.capacity() == 0 {
        return;
    }
    v.clear();
    LISTS.with(|l| {
        let mut lists = l.borrow_mut();
        if lists.readahead.len() < PER_LIST {
            lists.readahead.push(v);
        }
    });
}

/// An empty parked-page vector, recycled when possible.
pub fn parked_vec() -> Vec<ParkedPage> {
    if !enabled() {
        return Vec::new();
    }
    LISTS
        .with(|l| l.borrow_mut().parked.pop())
        .unwrap_or_default()
}

/// Returns a parked-page vector to the free list.
pub fn recycle_parked(mut v: Vec<ParkedPage>) {
    if !enabled() || v.capacity() == 0 {
        return;
    }
    v.clear();
    LISTS.with(|l| {
        let mut lists = l.borrow_mut();
        if lists.parked.len() < PER_LIST {
            lists.parked.push(v);
        }
    });
}

/// An empty write-result vector, recycled when possible.
pub fn labels_vec() -> Vec<Result<Label, FsError>> {
    if !enabled() {
        return Vec::new();
    }
    LISTS
        .with(|l| l.borrow_mut().labels.pop())
        .unwrap_or_default()
}

/// Returns a write-result vector to the free list.
pub fn recycle_labels(mut v: Vec<Result<Label, FsError>>) {
    if !enabled() || v.capacity() == 0 {
        return;
    }
    v.clear();
    LISTS.with(|l| {
        let mut lists = l.borrow_mut();
        if lists.labels.len() < PER_LIST {
            lists.labels.push(v);
        }
    });
}

/// An empty page-result vector, recycled when possible.
pub fn reads_vec() -> Vec<PageResult> {
    if !enabled() {
        return Vec::new();
    }
    LISTS
        .with(|l| l.borrow_mut().reads.pop())
        .unwrap_or_default()
}

/// Returns a page-result vector to the free list.
pub fn recycle_reads(mut v: Vec<PageResult>) {
    if !enabled() || v.capacity() == 0 {
        return;
    }
    v.clear();
    LISTS.with(|l| {
        let mut lists = l.borrow_mut();
        if lists.reads.len() < PER_LIST {
            lists.reads.push(v);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reuses_capacity() {
        alto_disk::pool::set_enabled(true);
        let mut v = parked_vec();
        for i in 0..4u16 {
            v.push((i, DiskAddress(i), [0; DATA_WORDS]));
        }
        let cap = v.capacity();
        recycle_parked(v);
        let v2 = parked_vec();
        assert!(v2.is_empty());
        assert!(v2.capacity() >= cap.min(4));
    }

    #[test]
    fn disabled_pool_hands_out_fresh_vectors() {
        alto_disk::pool::set_enabled(false);
        let mut v = readahead_vec();
        v.push((1, DiskAddress(1), Label::FREE, [0; DATA_WORDS]));
        recycle_readahead(v);
        let v2 = readahead_vec();
        assert_eq!(v2.capacity(), 0);
        alto_disk::pool::set_enabled(true);
    }

    #[test]
    fn free_lists_are_bounded() {
        alto_disk::pool::set_enabled(true);
        for _ in 0..2 * PER_LIST {
            let mut v = labels_vec();
            v.reserve(4);
            recycle_labels(v);
        }
        let held = LISTS.with(|l| l.borrow().labels.len());
        assert!(held <= PER_LIST);
    }
}
