//! OS6-style streams (§2).
//!
//! "A stream is an object that can produce or consume items … There is a
//! standard set of operations defined on every stream: Get, Put (normally
//! only one of these is defined), Reset, Test for end of input, and a few
//! others." The procedures implementing the operations "are not the same
//! for all streams, and indeed can change from time to time" — i.e. each
//! stream carries its own implementation, which in Rust is a trait object.
//!
//! Streams are generic over a *world* type `W`: the state the stream's
//! operations act through. A [`MemoryStream`] needs no world (`W = ()`),
//! a [`DiskByteStream`] works through a mounted
//! [`alto_fs::FileSystem`], and the [`KeyboardStream`]/[`DisplayStream`]
//! work through an [`alto_machine::Machine`]. This mirrors the paper's
//! constructor parameterization ("the procedure to create a stream object
//! of concrete type 'disk file stream' takes as parameters … a disk object
//! … and a zone object", §2) while staying inside Rust's ownership rules.
//!
//! Non-standard operations (§2: "set buffer size, read position in a disk
//! file, etc.") appear as inherent methods on the concrete types — using
//! one "sacrifices compatibility", exactly as the paper warns.

#![forbid(unsafe_code)]

pub mod counting;
pub mod disk;
pub mod errors;
pub mod machine_streams;
pub mod memory;
pub mod pool;

pub use counting::CountingStream;
pub use disk::{DiskByteStream, DiskWordStream};
pub use errors::StreamError;
pub use machine_streams::{DisplayStream, KeyboardStream};
pub use memory::{MemoryStream, NullStream};

/// The abstract stream object: items are 16-bit words (bytes are carried
/// in the low half), matching the one-word BCPL objects of the original.
pub trait Stream<W> {
    /// Gets the next item. `Err(StreamError::EndOfStream)` past the end.
    fn get(&mut self, world: &mut W) -> Result<u16, StreamError> {
        let _ = world;
        Err(StreamError::NotSupported("get"))
    }

    /// Puts an item.
    fn put(&mut self, world: &mut W, item: u16) -> Result<(), StreamError> {
        let _ = (world, item);
        Err(StreamError::NotSupported("put"))
    }

    /// Reads up to `out.len()` bytes, one item per byte (items carry bytes
    /// in their low half). Returns how many bytes were read — short only
    /// at the end of the input. This default is per-item dispatch; streams
    /// with page buffers (the disk streams) override it with slice copies.
    fn read_bytes(&mut self, world: &mut W, out: &mut [u8]) -> Result<usize, StreamError> {
        for (i, slot) in out.iter_mut().enumerate() {
            match self.get(world) {
                Ok(item) => *slot = item as u8,
                Err(StreamError::EndOfStream) => return Ok(i),
                Err(e) => return Err(e),
            }
        }
        Ok(out.len())
    }

    /// Writes every byte of `bytes`, one item per byte. Same override note
    /// as [`Stream::read_bytes`].
    fn write_bytes(&mut self, world: &mut W, bytes: &[u8]) -> Result<(), StreamError> {
        for &b in bytes {
            self.put(world, b as u16)?;
        }
        Ok(())
    }

    /// Puts the stream into its standard initial state ("the exact meaning
    /// of this operation depends on the type of the stream", §2).
    fn reset(&mut self, world: &mut W) -> Result<(), StreamError>;

    /// True if the stream has no more input.
    fn endof(&mut self, world: &mut W) -> Result<bool, StreamError>;

    /// Flushes and closes the stream. Further operations fail.
    fn close(&mut self, world: &mut W) -> Result<(), StreamError>;
}

/// Convenience: drains a whole input stream into a vector.
pub fn read_all<W, S: Stream<W> + ?Sized>(
    stream: &mut S,
    world: &mut W,
) -> Result<Vec<u16>, StreamError> {
    let mut out = Vec::new();
    loop {
        match stream.get(world) {
            Ok(item) => out.push(item),
            Err(StreamError::EndOfStream) => return Ok(out),
            Err(e) => return Err(e),
        }
    }
}

/// Convenience: writes a whole slice to an output stream.
pub fn write_all<W, S: Stream<W> + ?Sized>(
    stream: &mut S,
    world: &mut W,
    items: &[u16],
) -> Result<(), StreamError> {
    for &item in items {
        stream.put(world, item)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_operations_are_not_supported() {
        // A stream type that defines only the mandatory operations.
        struct Inert;
        impl Stream<()> for Inert {
            fn reset(&mut self, (): &mut ()) -> Result<(), StreamError> {
                Ok(())
            }
            fn endof(&mut self, (): &mut ()) -> Result<bool, StreamError> {
                Ok(true)
            }
            fn close(&mut self, (): &mut ()) -> Result<(), StreamError> {
                Ok(())
            }
        }
        let mut s = Inert;
        assert_eq!(s.get(&mut ()), Err(StreamError::NotSupported("get")));
        assert_eq!(s.put(&mut (), 1), Err(StreamError::NotSupported("put")));
    }

    #[test]
    fn streams_are_object_safe() {
        let mut s: Box<dyn Stream<()>> = Box::new(MemoryStream::from_words(&[1, 2]));
        assert_eq!(s.get(&mut ()).unwrap(), 1);
        assert_eq!(read_all(&mut *s, &mut ()).unwrap(), vec![2]);
    }

    #[test]
    fn default_bulk_operations_ride_on_get_and_put() {
        let mut s = MemoryStream::from_words(&[7, 8, 9]);
        let mut buf = [0u8; 5];
        // Short read at end of input, not an error.
        assert_eq!(s.read_bytes(&mut (), &mut buf).unwrap(), 3);
        assert_eq!(&buf[..3], &[7, 8, 9]);
        let mut w = MemoryStream::new();
        w.write_bytes(&mut (), &[4, 5]).unwrap();
        assert_eq!(w.contents(), &[4, 5]);
    }
}
