//! Keyboard and display streams (§5: "the system provides streams for disk
//! files, keyboard input and display output").
//!
//! These streams work through the simulated [`Machine`]: the keyboard
//! stream reads struck keys from the device (the OS layers its type-ahead
//! buffer on top — §5.2 level 2), and the display stream prints to the
//! teletype display.

use alto_machine::Machine;

use crate::errors::StreamError;
use crate::Stream;

/// An input stream of keys from the keyboard device.
///
/// `get` returns the next key struck by the current simulated time;
/// `endof` is true when no key is currently waiting (the keyboard never
/// "ends" — this mirrors the Alto, where `endof` on the keyboard stream
/// meant "nothing typed yet").
#[derive(Debug, Default, Clone, Copy)]
pub struct KeyboardStream;

impl Stream<Machine> for KeyboardStream {
    fn get(&mut self, m: &mut Machine) -> Result<u16, StreamError> {
        let now = m.clock().now();
        m.keyboard.read_at(now).ok_or(StreamError::EndOfStream)
    }

    fn reset(&mut self, _: &mut Machine) -> Result<(), StreamError> {
        Ok(())
    }

    fn endof(&mut self, m: &mut Machine) -> Result<bool, StreamError> {
        let now = m.clock().now();
        Ok(!m.keyboard.pending(now))
    }

    fn close(&mut self, _: &mut Machine) -> Result<(), StreamError> {
        Ok(())
    }
}

/// An output stream of characters to the display.
#[derive(Debug, Default, Clone, Copy)]
pub struct DisplayStream;

impl Stream<Machine> for DisplayStream {
    fn put(&mut self, m: &mut Machine, item: u16) -> Result<(), StreamError> {
        m.display.put_char((item as u8) as char);
        Ok(())
    }

    fn reset(&mut self, m: &mut Machine) -> Result<(), StreamError> {
        m.display.clear();
        Ok(())
    }

    fn endof(&mut self, _: &mut Machine) -> Result<bool, StreamError> {
        Ok(false)
    }

    fn close(&mut self, _: &mut Machine) -> Result<(), StreamError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alto_sim::{SimClock, SimTime, Trace};

    fn machine() -> Machine {
        Machine::new(SimClock::new(), Trace::new())
    }

    #[test]
    fn keyboard_stream_reads_struck_keys() {
        let mut m = machine();
        m.keyboard
            .type_string(SimTime::ZERO, SimTime::from_millis(50), "ok");
        let mut s = KeyboardStream;
        assert!(!s.endof(&mut m).unwrap());
        assert_eq!(s.get(&mut m).unwrap(), b'o' as u16);
        // 'k' is struck 50 ms later; not yet available.
        assert_eq!(s.get(&mut m), Err(StreamError::EndOfStream));
        m.clock().advance(SimTime::from_millis(50));
        assert_eq!(s.get(&mut m).unwrap(), b'k' as u16);
        assert!(s.endof(&mut m).unwrap());
    }

    #[test]
    fn keyboard_stream_rejects_put() {
        let mut m = machine();
        let mut s = KeyboardStream;
        assert_eq!(s.put(&mut m, 65), Err(StreamError::NotSupported("put")));
    }

    #[test]
    fn display_stream_prints() {
        let mut m = machine();
        let mut s = DisplayStream;
        for c in "hi\nthere".bytes() {
            s.put(&mut m, c as u16).unwrap();
        }
        assert_eq!(m.display.transcript(), "hi\nthere");
        assert_eq!(m.display.screen()[1], "there");
    }

    #[test]
    fn display_reset_clears_screen() {
        let mut m = machine();
        let mut s = DisplayStream;
        s.put(&mut m, b'x' as u16).unwrap();
        s.reset(&mut m).unwrap();
        assert_eq!(m.display.screen(), [String::new()]);
    }

    #[test]
    fn display_rejects_get() {
        let mut m = machine();
        let mut s = DisplayStream;
        assert_eq!(s.get(&mut m), Err(StreamError::NotSupported("get")));
        assert!(!s.endof(&mut m).unwrap());
    }
}
