//! Disk file streams (§2, §5).
//!
//! The standard way to read and write files: a buffered cursor over a
//! file's pages. Ordinary data traffic costs ordinary reads and writes;
//! the §3.3 label discipline shows through exactly where the paper says it
//! must — growing a page's byte count or extending the file rewrites a
//! label (one disk revolution), while overwriting in place does not.
//!
//! `position`/`set_position` are the paper's "non-standard operations"
//! (§2): they are inherent methods, not part of the abstract [`Stream`]
//! interface, and a program that uses them only works with disk streams.
//!
//! Sequential readers get **readahead**: when the stream crosses into the
//! next page of a file whose leader hints at consecutive layout, it fetches
//! a handful of following pages in one chained batch (§3.6 guessed
//! transfers) and serves later crossings from memory. The buffered pages
//! are guarded by the disk's [`Disk::write_epoch`] — any write to the
//! medium behind the stream's back drops them — so a reader never observes
//! stale prefetched data.
//!
//! Sequential writers get the symmetric **write-behind**: a page crossing
//! parks the dirty page in a delayed-write buffer instead of flushing it,
//! and a drain writes all parked pages as one chained batch — combined
//! with the next readahead refill when possible, so four writes and four
//! reads ride on a single command set-up. Every parked page keeps the full
//! §3.3 check-before-write discipline when it finally transfers. Explicit
//! `flush`/`close`, seeks, epoch conflicts (a foreign write to the medium)
//! and buffer pressure all drain. The stream re-stamps its epoch after its
//! *own* drain — the drain bumps the epoch once for the whole batch and
//! must not poison the stream's own readahead — while foreign writes still
//! invalidate. Label-changing pages (length growth, extension) never park:
//! a label rewrite is a check pass plus a write pass on one sector and
//! cannot chain.

use alto_disk::{Disk, DiskAddress, Label, UnparkOutcome, DATA_WORDS};
use alto_fs::file::PAGE_BYTES;
use alto_fs::names::FileFullName;
use alto_fs::{FileSystem, FsError, PageName};

use crate::errors::StreamError;
use crate::Stream;

/// A byte-granularity stream over a disk file.
///
/// # Examples
///
/// ```
/// use alto_disk::{DiskDrive, DiskModel};
/// use alto_fs::{dir, FileSystem};
/// use alto_sim::{SimClock, Trace};
/// use alto_streams::{DiskByteStream, Stream};
///
/// let drive = DiskDrive::with_formatted_pack(
///     SimClock::new(), Trace::new(), DiskModel::Diablo31, 1);
/// let mut fs = FileSystem::format(drive).unwrap();
/// let root = fs.root_dir();
/// let f = dir::create_named_file(&mut fs, root, "log").unwrap();
///
/// let mut s = DiskByteStream::open(&mut fs, f).unwrap();
/// for b in b"stream me" {
///     s.put_byte(&mut fs, *b).unwrap();
/// }
/// s.close(&mut fs).unwrap();
/// assert_eq!(fs.read_file(f).unwrap(), b"stream me");
/// ```
#[derive(Debug)]
pub struct DiskByteStream<D: Disk> {
    file: FileFullName,
    /// Current data page (1-based).
    page: u16,
    /// Hint address of the current page.
    da: DiskAddress,
    /// The current page's label (fresh from the last read).
    label: Label,
    buffer: [u16; DATA_WORDS],
    /// Byte offset within the current page.
    offset: usize,
    dirty: bool,
    /// The label (length or links) changed: flush must rewrite it.
    label_changed: bool,
    /// The stream extended or shrank the file: close must refresh the
    /// leader hints.
    resized: bool,
    closed: bool,
    /// Leader hint: the file's pages may sit at consecutive addresses, so
    /// guessed readahead batches are worth issuing.
    consecutive_hint: bool,
    /// Pages prefetched beyond the current one: `(page, da, label, data)`.
    readahead: Vec<(u16, DiskAddress, Label, [u16; DATA_WORDS])>,
    /// The disk's [`Disk::write_epoch`] as of this stream's own last drain
    /// or refill; a different value means a *foreign* write reached the
    /// medium, so prefetched copies may be stale and parked pages should
    /// meet their label checks promptly.
    medium_epoch: u64,
    /// Dirty pages parked for a delayed write: `(page, da, data)`. Only
    /// pages whose labels are unchanged park here; they are genuinely
    /// absent from the medium until a drain writes them back.
    write_behind: Vec<(u16, DiskAddress, [u16; DATA_WORDS])>,
    /// The ablation switch: off restores one synchronous flush per page
    /// crossing.
    write_behind_enabled: bool,
    /// Empty-but-warm double buffer for [`Self::drain`]: the parked pages
    /// swap into it for the duration of a drain, so the steady state never
    /// reallocates either vector.
    drain_scratch: Vec<(u16, DiskAddress, [u16; DATA_WORDS])>,
    /// Reusable output storage for `drain_and_prefetch_into`.
    write_results: Vec<Result<Label, FsError>>,
    /// Reusable output storage for the prefetch half of a refill batch.
    read_results: Vec<alto_fs::page::PageResult>,
    _disk: std::marker::PhantomData<D>,
}

/// Pages fetched per readahead batch (the current page plus up to three
/// prefetched followers).
const READAHEAD_PAGES: u16 = 4;

/// Dirty pages parked before buffer pressure forces a drain (symmetric
/// with [`READAHEAD_PAGES`], so a combined drain-and-refill batch moves up
/// to eight sectors on one command set-up).
const WRITE_BEHIND_PAGES: usize = 4;

impl<D: Disk> DiskByteStream<D> {
    /// Opens a stream on `file`, positioned at byte 0. The leader comes
    /// through the file system's leader cache, so a repeated open (or one
    /// straight after a verified name lookup) skips that disk revolution.
    pub fn open(fs: &mut FileSystem<D>, file: FileFullName) -> Result<Self, StreamError> {
        let (leader_label, leader) = fs.open_leader(file)?;
        let da = leader_label.next;
        let pn = PageName::new(file.fv, 1, da);
        let (label, buffer) = fs.read_page(pn)?;
        let medium_epoch = fs.disk().write_epoch();
        Ok(DiskByteStream {
            file,
            page: 1,
            da,
            label,
            buffer,
            offset: 0,
            dirty: false,
            label_changed: false,
            resized: false,
            closed: false,
            consecutive_hint: leader.maybe_consecutive,
            readahead: crate::pool::readahead_vec(),
            medium_epoch,
            write_behind: crate::pool::parked_vec(),
            write_behind_enabled: true,
            drain_scratch: crate::pool::parked_vec(),
            write_results: crate::pool::labels_vec(),
            read_results: crate::pool::reads_vec(),
            _disk: std::marker::PhantomData,
        })
    }

    /// Current absolute byte position (non-standard operation).
    pub fn position(&self) -> u64 {
        (self.page as u64 - 1) * PAGE_BYTES as u64 + self.offset as u64
    }

    /// Seeks to an absolute byte position within the file (non-standard
    /// operation). Positions up to and including the end are valid.
    pub fn set_position(&mut self, fs: &mut FileSystem<D>, pos: u64) -> Result<(), StreamError> {
        self.check_open()?;
        let target_page = (pos / PAGE_BYTES as u64) as u16 + 1;
        let target_offset = (pos % PAGE_BYTES as u64) as usize;
        if target_page != self.page {
            self.flush(fs)?;
            // Walk from the current page if the target is ahead, else from
            // page 1 via the leader.
            let (mut page, mut da) = if target_page > self.page {
                (self.page, self.da)
            } else {
                let (leader_label, _) = fs.open_leader(self.file)?;
                (1, leader_label.next)
            };
            loop {
                let pn = PageName::new(self.file.fv, page, da);
                let (label, buffer) = fs.read_page(pn)?;
                if page == target_page {
                    self.page = page;
                    self.da = da;
                    self.label = label;
                    self.buffer = buffer;
                    break;
                }
                if label.next.is_nil() {
                    return Err(StreamError::Fs(FsError::PastEnd {
                        page: target_page,
                        last: page,
                    }));
                }
                page += 1;
                da = label.next;
            }
        }
        if target_offset > self.label.length as usize {
            return Err(StreamError::Fs(FsError::PastEnd {
                page: target_page,
                last: self.page,
            }));
        }
        self.offset = target_offset;
        Ok(())
    }

    /// The file this stream is open on.
    pub fn file(&self) -> FileFullName {
        self.file
    }

    /// Writes everything pending back to the medium: first the parked
    /// write-behind pages (one chained batch), then the current page if
    /// modified.
    pub fn flush(&mut self, fs: &mut FileSystem<D>) -> Result<(), StreamError> {
        self.drain(fs)?;
        if !self.dirty {
            return Ok(());
        }
        let pn = PageName::new(self.file.fv, self.page, self.da);
        if self.label_changed {
            alto_fs::page::rewrite_label(fs.disk_mut(), pn, self.label, &self.buffer)?;
        } else {
            fs.write_page(pn, &self.buffer)?;
        }
        self.dirty = false;
        self.label_changed = false;
        Ok(())
    }

    /// Enables or disables write-behind (on by default). Turning it off
    /// drains anything parked and restores one synchronous flush per page
    /// crossing — the old write path, kept runnable as an ablation in the
    /// same spirit as `UnscheduledDisk`.
    pub fn set_write_behind(
        &mut self,
        fs: &mut FileSystem<D>,
        enabled: bool,
    ) -> Result<(), StreamError> {
        if !enabled {
            self.drain(fs)?;
        }
        self.write_behind_enabled = enabled;
        Ok(())
    }

    /// Writes all parked pages back as one chained batch. Each page is an
    /// ordinary data write at its known address whose label check must
    /// pass before the value transfers (§3.3), so a conflicting foreign
    /// change surfaces as an error here rather than corrupting anything.
    /// The batch bumps the write epoch once for this stream's purposes:
    /// its own readahead stays valid (the parked pages all lie behind the
    /// read cursor), so the epoch is re-stamped after the drain.
    fn drain(&mut self, fs: &mut FileSystem<D>) -> Result<(), StreamError> {
        if self.write_behind.is_empty() {
            return Ok(());
        }
        // Swap the parked pages into the warm double buffer (and the warm
        // output vectors out of self) so a steady-state drain reuses the
        // same storage every time.
        let mut writes = std::mem::replace(
            &mut self.write_behind,
            std::mem::take(&mut self.drain_scratch),
        );
        let mut write_results = std::mem::take(&mut self.write_results);
        let mut read_results = std::mem::take(&mut self.read_results);
        let outcome = alto_fs::page::drain_and_prefetch_into(
            fs.disk_mut(),
            self.file.fv,
            &writes,
            None,
            0,
            &mut write_results,
            &mut read_results,
        );
        self.read_results = read_results;
        if let Err(e) = outcome {
            // Pre-flight failure: the batch never reached the disk,
            // so every parked page is still owed.
            self.drain_scratch = std::mem::replace(&mut self.write_behind, writes);
            self.write_results = write_results;
            return Err(e.into());
        }
        fs.disk_mut().note_write_behind(writes.len() as u64);
        self.medium_epoch = fs.disk().write_epoch();
        let result = self.repark_failed(fs, &writes, &mut write_results);
        writes.clear();
        self.drain_scratch = writes;
        self.write_results = write_results;
        result
    }

    /// Puts any page whose drain write failed back in the write-behind
    /// buffer and reports the first failure. A failed write must not be
    /// silently dropped with the drained batch: the page stays owed to the
    /// medium and surfaces again on the next drain, `flush` or `close` if
    /// it is still undeliverable.
    fn repark_failed(
        &mut self,
        fs: &mut FileSystem<D>,
        writes: &[(u16, DiskAddress, [u16; DATA_WORDS])],
        results: &mut Vec<Result<Label, FsError>>,
    ) -> Result<(), StreamError> {
        let mut first_err = None;
        for (w, r) in writes.iter().zip(results.drain(..)) {
            match r {
                Ok(_) => fs.disk_mut().note_unpark(w.1, w.0, UnparkOutcome::Drained),
                Err(e) => {
                    fs.disk_mut().note_unpark(w.1, w.0, UnparkOutcome::Reparked);
                    self.write_behind.push(*w);
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e.into()),
            None => Ok(()),
        }
    }

    /// Crossing out of the current page: park it dirty for a delayed write,
    /// or flush synchronously when write-behind is off or the label changed
    /// (a label rewrite is a check pass plus a write pass on one sector and
    /// cannot ride in a chained data batch).
    fn park_or_flush(&mut self, fs: &mut FileSystem<D>) -> Result<(), StreamError> {
        if !self.dirty {
            return Ok(());
        }
        if !self.write_behind_enabled || self.label_changed {
            return self.flush(fs);
        }
        fs.disk_mut().note_park(self.da, self.page);
        self.write_behind.push((self.page, self.da, self.buffer));
        self.dirty = false;
        Ok(())
    }

    /// The shared page-crossing step of [`Self::get_byte`],
    /// [`Self::put_byte`] and the bulk slice paths: hands the current page
    /// to the write-behind buffer (or flushes it) and advances to the next
    /// page of the chain.
    fn advance_to_next_page(&mut self, fs: &mut FileSystem<D>) -> Result<(), StreamError> {
        self.park_or_flush(fs)?;
        let (next_page, next_da) = (self.page + 1, self.label.next);
        self.advance_page(fs, next_page, next_da)
    }

    fn check_open(&self) -> Result<(), StreamError> {
        if self.closed {
            Err(StreamError::Closed)
        } else {
            Ok(())
        }
    }

    fn load_page(
        &mut self,
        fs: &mut FileSystem<D>,
        page: u16,
        da: DiskAddress,
    ) -> Result<(), StreamError> {
        let pn = PageName::new(self.file.fv, page, da);
        let (label, buffer) = fs.read_page(pn)?;
        self.page = page;
        self.da = da;
        self.label = label;
        self.buffer = buffer;
        self.offset = 0;
        Ok(())
    }

    /// Moves to `(page, da)`, serving from the readahead buffer when it is
    /// still fresh and refilling it with a chained guessed batch (§3.6)
    /// when the leader hints the file is consecutively laid out. A refill
    /// drains the write-behind buffer in the *same* batch: in the steady
    /// sequential-write state one command set-up and one rotational
    /// schedule cover [`WRITE_BEHIND_PAGES`] writes behind the cursor plus
    /// [`READAHEAD_PAGES`] reads ahead of it.
    fn advance_page(
        &mut self,
        fs: &mut FileSystem<D>,
        page: u16,
        da: DiskAddress,
    ) -> Result<(), StreamError> {
        // A *foreign* write to the medium since this stream's last drain or
        // refill may have moved, freed or rewritten the buffered pages:
        // drop the prefetched copies, and get the parked pages to their
        // label checks promptly (the checks arbitrate any conflict).
        if fs.disk().write_epoch() != self.medium_epoch {
            self.readahead.clear();
            self.drain(fs)?;
        }
        if let Some(i) = self.readahead.iter().position(|e| e.0 == page && e.1 == da) {
            // Buffer pressure: drain before yet another page parks. The
            // prefetched copies survive the stream's own drain — the parked
            // pages lie behind the cursor, the prefetched ones ahead.
            if self.write_behind.len() >= WRITE_BEHIND_PAGES {
                self.drain(fs)?;
            }
            let (p, d, label, buffer) = self.readahead.remove(i);
            fs.disk_mut().note_readahead(1, 0);
            self.page = p;
            self.da = d;
            self.label = label;
            self.buffer = buffer;
            self.offset = 0;
            return Ok(());
        }
        self.readahead.clear();
        if self.consecutive_hint {
            let mut writes = std::mem::replace(
                &mut self.write_behind,
                std::mem::take(&mut self.drain_scratch),
            );
            let mut write_results = std::mem::take(&mut self.write_results);
            let mut entries = std::mem::take(&mut self.read_results);
            match alto_fs::page::drain_and_prefetch_into(
                fs.disk_mut(),
                self.file.fv,
                &writes,
                Some(PageName::new(self.file.fv, page, da)),
                READAHEAD_PAGES,
                &mut write_results,
                &mut entries,
            ) {
                Ok(()) => {
                    if !writes.is_empty() {
                        fs.disk_mut().note_write_behind(writes.len() as u64);
                    }
                    self.medium_epoch = fs.disk().write_epoch();
                    let reparked = self.repark_failed(fs, &writes, &mut write_results);
                    writes.clear();
                    self.drain_scratch = writes;
                    self.write_results = write_results;
                    reparked?;
                    let mut drained = entries.drain(..);
                    let first = drained.next();
                    if let Some(Ok((label, buffer))) = first {
                        // Keep followers only while the verified links
                        // confirm the guessed consecutive run.
                        let mut expect_next = label.next;
                        let mut prefetched = 0u64;
                        for (j, entry) in drained.enumerate() {
                            let Ok((l, d)) = entry else { break };
                            let guess = DiskAddress(da.0.wrapping_add(j as u16 + 1));
                            if expect_next != guess {
                                break;
                            }
                            self.readahead.push((page + j as u16 + 1, guess, l, d));
                            prefetched += 1;
                            expect_next = l.next;
                        }
                        self.read_results = entries;
                        if prefetched > 0 {
                            fs.disk_mut().note_readahead(0, prefetched);
                        }
                        self.page = page;
                        self.da = da;
                        self.label = label;
                        self.buffer = buffer;
                        self.offset = 0;
                        return Ok(());
                    }
                    drop(drained);
                    self.read_results = entries;
                    // Entry 0 failed: the hint chain is authoritative
                    // there, so let the ordinary path (with its hint
                    // recovery) handle it. The drain already happened.
                }
                Err(e) => {
                    // The batch never reached the disk (pre-flight error):
                    // nothing landed, so the parked pages are still owed.
                    self.drain_scratch = std::mem::replace(&mut self.write_behind, writes);
                    self.write_results = write_results;
                    self.read_results = entries;
                    return Err(e.into());
                }
            }
        }
        self.drain(fs)?;
        self.load_page(fs, page, da)
    }

    fn byte_at(&self, i: usize) -> u8 {
        let w = self.buffer[i / 2];
        if i.is_multiple_of(2) {
            (w >> 8) as u8
        } else {
            w as u8
        }
    }

    fn set_byte(&mut self, i: usize, b: u8) {
        let w = &mut self.buffer[i / 2];
        if i.is_multiple_of(2) {
            *w = (*w & 0x00FF) | ((b as u16) << 8);
        } else {
            *w = (*w & 0xFF00) | b as u16;
        }
    }

    /// Gets the next byte.
    pub fn get_byte(&mut self, fs: &mut FileSystem<D>) -> Result<u8, StreamError> {
        self.check_open()?;
        loop {
            if self.offset < self.label.length as usize {
                let b = self.byte_at(self.offset);
                self.offset += 1;
                return Ok(b);
            }
            // At the end of this page's data.
            if (self.label.length as usize) < PAGE_BYTES || self.label.next.is_nil() {
                return Err(StreamError::EndOfStream);
            }
            self.advance_to_next_page(fs)?;
        }
    }

    /// Puts a byte at the current position (overwriting or extending).
    pub fn put_byte(&mut self, fs: &mut FileSystem<D>, b: u8) -> Result<(), StreamError> {
        self.check_open()?;
        if self.offset == PAGE_BYTES {
            // Page full: move to (or create) the next page.
            if self.label.next.is_nil() {
                self.extend(fs)?;
            } else {
                self.advance_to_next_page(fs)?;
            }
        }
        self.set_byte(self.offset, b);
        self.offset += 1;
        self.dirty = true;
        if self.offset > self.label.length as usize {
            self.label.length = self.offset as u16;
            self.label_changed = true;
            self.resized = true;
        }
        Ok(())
    }

    /// Copies `out.len()` bytes out of `words` starting at byte `start`.
    /// Bytes sit big-endian in the 16-bit words; the odd edges are peeled
    /// off so the body is whole-word slice copies.
    fn copy_out(words: &[u16; DATA_WORDS], start: usize, out: &mut [u8]) {
        let mut i = 0;
        let mut pos = start;
        if !pos.is_multiple_of(2) && i < out.len() {
            out[i] = words[pos / 2] as u8;
            i += 1;
            pos += 1;
        }
        let pairs = (out.len() - i) / 2;
        for (chunk, &w) in out[i..i + 2 * pairs]
            .chunks_exact_mut(2)
            .zip(&words[pos / 2..])
        {
            chunk.copy_from_slice(&w.to_be_bytes());
        }
        i += 2 * pairs;
        pos += 2 * pairs;
        if i < out.len() {
            out[i] = (words[pos / 2] >> 8) as u8;
        }
    }

    /// Copies `bytes` into `words` starting at byte `start` (the converse
    /// of [`Self::copy_out`]; partial words at the edges are merged).
    fn copy_in(words: &mut [u16; DATA_WORDS], start: usize, bytes: &[u8]) {
        let mut i = 0;
        let mut pos = start;
        if !pos.is_multiple_of(2) && i < bytes.len() {
            let w = &mut words[pos / 2];
            *w = (*w & 0xFF00) | bytes[i] as u16;
            i += 1;
            pos += 1;
        }
        let pairs = (bytes.len() - i) / 2;
        for (chunk, w) in bytes[i..i + 2 * pairs]
            .chunks_exact(2)
            .zip(&mut words[pos / 2..])
        {
            *w = u16::from_be_bytes([chunk[0], chunk[1]]);
        }
        i += 2 * pairs;
        pos += 2 * pairs;
        if i < bytes.len() {
            let w = &mut words[pos / 2];
            *w = (*w & 0x00FF) | ((bytes[i] as u16) << 8);
        }
    }

    /// Reads up to `out.len()` bytes, moving whole runs out of the page
    /// buffer with slice copies instead of per-byte dispatch — the bulk
    /// fast path. Short only at the end of the stream.
    pub fn read_bytes(
        &mut self,
        fs: &mut FileSystem<D>,
        out: &mut [u8],
    ) -> Result<usize, StreamError> {
        self.check_open()?;
        let mut done = 0;
        while done < out.len() {
            let avail = (self.label.length as usize).saturating_sub(self.offset);
            if avail == 0 {
                if (self.label.length as usize) < PAGE_BYTES || self.label.next.is_nil() {
                    break;
                }
                self.advance_to_next_page(fs)?;
                continue;
            }
            let n = avail.min(out.len() - done);
            Self::copy_out(&self.buffer, self.offset, &mut out[done..done + n]);
            self.offset += n;
            done += n;
        }
        Ok(done)
    }

    /// Writes all of `bytes`, moving whole runs into the page buffer with
    /// slice copies. Page crossings ride the same write-behind machinery
    /// as [`Self::put_byte`], so a long sequential write drains in chained
    /// batches.
    pub fn write_bytes(&mut self, fs: &mut FileSystem<D>, bytes: &[u8]) -> Result<(), StreamError> {
        self.check_open()?;
        let mut done = 0;
        while done < bytes.len() {
            if self.offset == PAGE_BYTES {
                if self.label.next.is_nil() {
                    self.extend(fs)?;
                } else {
                    self.advance_to_next_page(fs)?;
                }
            }
            let n = (PAGE_BYTES - self.offset).min(bytes.len() - done);
            Self::copy_in(&mut self.buffer, self.offset, &bytes[done..done + n]);
            self.offset += n;
            done += n;
            self.dirty = true;
            if self.offset > self.label.length as usize {
                self.label.length = self.offset as u16;
                self.label_changed = true;
                self.resized = true;
            }
        }
        Ok(())
    }

    /// Allocates a fresh page after the current (full) one.
    fn extend(&mut self, fs: &mut FileSystem<D>) -> Result<(), StreamError> {
        debug_assert_eq!(self.label.length as usize, PAGE_BYTES);
        let new_label = Label {
            fid: self.file.fv.serial.words(),
            version: self.file.fv.version,
            page_number: self.page + 1,
            length: 0,
            next: DiskAddress::NIL,
            prev: self.da,
        };
        let new_da = fs.allocate_page(
            Some(DiskAddress(self.da.0.wrapping_add(1))),
            new_label,
            &[0; DATA_WORDS],
        )?;
        // The current page's next link changes: rewrite its label along
        // with the buffered data (one revolution, §3.3).
        self.label.next = new_da;
        let pn = PageName::new(self.file.fv, self.page, self.da);
        alto_fs::page::rewrite_label(fs.disk_mut(), pn, self.label, &self.buffer)?;
        self.dirty = false;
        self.label_changed = false;
        self.resized = true;
        self.page += 1;
        self.da = new_da;
        self.label = new_label;
        self.buffer = [0; DATA_WORDS];
        self.offset = 0;
        Ok(())
    }

    /// Flushes and refreshes the leader (dates and last-page hints).
    fn finish(&mut self, fs: &mut FileSystem<D>) -> Result<(), StreamError> {
        self.flush(fs)?;
        if self.resized {
            // Find the file's last page (usually the current one).
            let (mut page, mut da, mut label) = (self.page, self.da, self.label);
            while !label.next.is_nil() {
                page += 1;
                da = label.next;
                let (l, _) = fs.read_page(PageName::new(self.file.fv, page, da))?;
                label = l;
            }
            let mut leader = fs.read_leader(self.file)?;
            leader.last_page = page;
            leader.last_da = da;
            leader.written = fs.now();
            fs.write_leader(self.file, &leader)?;
            self.resized = false;
        }
        Ok(())
    }
}

impl<D: Disk> Stream<FileSystem<D>> for DiskByteStream<D> {
    fn get(&mut self, fs: &mut FileSystem<D>) -> Result<u16, StreamError> {
        self.get_byte(fs).map(u16::from)
    }

    fn put(&mut self, fs: &mut FileSystem<D>, item: u16) -> Result<(), StreamError> {
        self.put_byte(fs, item as u8)
    }

    fn read_bytes(&mut self, fs: &mut FileSystem<D>, out: &mut [u8]) -> Result<usize, StreamError> {
        DiskByteStream::read_bytes(self, fs, out)
    }

    fn write_bytes(&mut self, fs: &mut FileSystem<D>, bytes: &[u8]) -> Result<(), StreamError> {
        DiskByteStream::write_bytes(self, fs, bytes)
    }

    fn reset(&mut self, fs: &mut FileSystem<D>) -> Result<(), StreamError> {
        self.check_open()?;
        self.finish(fs)?;
        let (leader_label, _) = fs.open_leader(self.file)?;
        self.load_page(fs, 1, leader_label.next)?;
        Ok(())
    }

    fn endof(&mut self, _fs: &mut FileSystem<D>) -> Result<bool, StreamError> {
        self.check_open()?;
        Ok(self.offset >= self.label.length as usize && self.label.next.is_nil())
    }

    fn close(&mut self, fs: &mut FileSystem<D>) -> Result<(), StreamError> {
        if self.closed {
            return Ok(());
        }
        self.finish(fs)?;
        self.closed = true;
        Ok(())
    }
}

impl<D: Disk> Drop for DiskByteStream<D> {
    /// Hands the stream's working vectors back to the thread-local free
    /// lists so a steady open/transfer/close cycle reuses their capacity.
    /// Dropping an unclosed stream still abandons its parked pages — the
    /// recycle clears contents; only the allocations survive.
    fn drop(&mut self) {
        crate::pool::recycle_readahead(std::mem::take(&mut self.readahead));
        crate::pool::recycle_parked(std::mem::take(&mut self.write_behind));
        crate::pool::recycle_parked(std::mem::take(&mut self.drain_scratch));
        crate::pool::recycle_labels(std::mem::take(&mut self.write_results));
        crate::pool::recycle_reads(std::mem::take(&mut self.read_results));
    }
}

/// A word-granularity stream over a disk file: each item is one 16-bit
/// word (two file bytes, big-endian).
#[derive(Debug)]
pub struct DiskWordStream<D: Disk> {
    inner: DiskByteStream<D>,
}

impl<D: Disk> DiskWordStream<D> {
    /// Opens a word stream on `file`.
    pub fn open(fs: &mut FileSystem<D>, file: FileFullName) -> Result<Self, StreamError> {
        Ok(DiskWordStream {
            inner: DiskByteStream::open(fs, file)?,
        })
    }

    /// Current position in words (non-standard operation).
    pub fn position(&self) -> u64 {
        self.inner.position() / 2
    }

    /// Seeks to a word position (non-standard operation).
    pub fn set_position(&mut self, fs: &mut FileSystem<D>, words: u64) -> Result<(), StreamError> {
        self.inner.set_position(fs, words * 2)
    }
}

impl<D: Disk> Stream<FileSystem<D>> for DiskWordStream<D> {
    fn get(&mut self, fs: &mut FileSystem<D>) -> Result<u16, StreamError> {
        let hi = self.inner.get_byte(fs)?;
        let lo = self.inner.get_byte(fs)?;
        Ok(((hi as u16) << 8) | lo as u16)
    }

    fn put(&mut self, fs: &mut FileSystem<D>, item: u16) -> Result<(), StreamError> {
        self.inner.put_byte(fs, (item >> 8) as u8)?;
        self.inner.put_byte(fs, item as u8)
    }

    fn reset(&mut self, fs: &mut FileSystem<D>) -> Result<(), StreamError> {
        self.inner.reset(fs)
    }

    fn endof(&mut self, fs: &mut FileSystem<D>) -> Result<bool, StreamError> {
        self.inner.endof(fs)
    }

    fn close(&mut self, fs: &mut FileSystem<D>) -> Result<(), StreamError> {
        self.inner.close(fs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alto_disk::{DiskDrive, DiskModel};
    use alto_sim::{SimClock, Trace};

    type Fs = FileSystem<DiskDrive>;

    fn fresh_fs() -> Fs {
        let drive =
            DiskDrive::with_formatted_pack(SimClock::new(), Trace::new(), DiskModel::Diablo31, 1);
        FileSystem::format(drive).unwrap()
    }

    fn file_named(fs: &mut Fs, name: &str) -> FileFullName {
        let root = fs.root_dir();
        alto_fs::dir::create_named_file(fs, root, name).unwrap()
    }

    #[test]
    fn write_then_read_small() {
        let mut fs = fresh_fs();
        let f = file_named(&mut fs, "s.txt");
        let mut s = DiskByteStream::open(&mut fs, f).unwrap();
        for b in b"stream me" {
            s.put_byte(&mut fs, *b).unwrap();
        }
        s.close(&mut fs).unwrap();
        assert_eq!(fs.read_file(f).unwrap(), b"stream me");
    }

    #[test]
    fn read_via_stream() {
        let mut fs = fresh_fs();
        let f = file_named(&mut fs, "s.txt");
        fs.write_file(f, b"abc").unwrap();
        let mut s = DiskByteStream::open(&mut fs, f).unwrap();
        assert!(!s.endof(&mut fs).unwrap());
        assert_eq!(s.get_byte(&mut fs).unwrap(), b'a');
        assert_eq!(s.get_byte(&mut fs).unwrap(), b'b');
        assert_eq!(s.get_byte(&mut fs).unwrap(), b'c');
        assert!(s.endof(&mut fs).unwrap());
        assert_eq!(s.get_byte(&mut fs), Err(StreamError::EndOfStream));
    }

    #[test]
    fn multi_page_write_and_read_back() {
        let mut fs = fresh_fs();
        let f = file_named(&mut fs, "big.dat");
        let bytes: Vec<u8> = (0..3000u32).map(|i| (i % 251) as u8).collect();
        let mut s = DiskByteStream::open(&mut fs, f).unwrap();
        for &b in &bytes {
            s.put_byte(&mut fs, b).unwrap();
        }
        s.close(&mut fs).unwrap();
        assert_eq!(fs.read_file(f).unwrap(), bytes);
        // And read back through a fresh stream.
        let mut s = DiskByteStream::open(&mut fs, f).unwrap();
        let mut back = Vec::new();
        loop {
            match s.get_byte(&mut fs) {
                Ok(b) => back.push(b),
                Err(StreamError::EndOfStream) => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(back, bytes);
    }

    #[test]
    fn overwrite_in_place_is_ordinary_writes() {
        let mut fs = fresh_fs();
        let f = file_named(&mut fs, "w.dat");
        fs.write_file(f, &vec![0u8; 1000]).unwrap();
        let label_writes_before = fs.disk().stats().label_writes;
        let mut s = DiskByteStream::open(&mut fs, f).unwrap();
        for _ in 0..1000 {
            s.put_byte(&mut fs, 7).unwrap();
        }
        s.close(&mut fs).unwrap();
        // Same length, same pages: no label was rewritten.
        assert_eq!(fs.disk().stats().label_writes, label_writes_before);
        assert_eq!(fs.read_file(f).unwrap(), vec![7u8; 1000]);
    }

    #[test]
    fn growing_rewrites_labels() {
        let mut fs = fresh_fs();
        let f = file_named(&mut fs, "g.dat");
        let before = fs.disk().stats().label_writes;
        let mut s = DiskByteStream::open(&mut fs, f).unwrap();
        for _ in 0..600 {
            s.put_byte(&mut fs, 1).unwrap();
        }
        s.close(&mut fs).unwrap();
        // Page 1's length changed and a page was allocated: labels written.
        assert!(fs.disk().stats().label_writes > before);
        assert_eq!(fs.file_length(f).unwrap(), 600);
    }

    #[test]
    fn reset_rewinds() {
        let mut fs = fresh_fs();
        let f = file_named(&mut fs, "r.dat");
        fs.write_file(f, b"xyz").unwrap();
        let mut s = DiskByteStream::open(&mut fs, f).unwrap();
        assert_eq!(s.get_byte(&mut fs).unwrap(), b'x');
        s.reset(&mut fs).unwrap();
        assert_eq!(s.get_byte(&mut fs).unwrap(), b'x');
    }

    #[test]
    fn position_and_seek() {
        let mut fs = fresh_fs();
        let f = file_named(&mut fs, "p.dat");
        let bytes: Vec<u8> = (0..2000u32).map(|i| (i % 256) as u8).collect();
        fs.write_file(f, &bytes).unwrap();
        let mut s = DiskByteStream::open(&mut fs, f).unwrap();
        s.set_position(&mut fs, 1500).unwrap();
        assert_eq!(s.position(), 1500);
        assert_eq!(s.get_byte(&mut fs).unwrap(), (1500 % 256) as u8);
        // Seek backwards.
        s.set_position(&mut fs, 3).unwrap();
        assert_eq!(s.get_byte(&mut fs).unwrap(), 3);
        // Seek to the very end: valid position, instant end-of-stream.
        s.set_position(&mut fs, 2000).unwrap();
        assert_eq!(s.get_byte(&mut fs), Err(StreamError::EndOfStream));
        // Past the end: error.
        assert!(s.set_position(&mut fs, 3000).is_err());
    }

    #[test]
    fn seek_preserves_pending_writes() {
        let mut fs = fresh_fs();
        let f = file_named(&mut fs, "sw.dat");
        fs.write_file(f, &vec![0u8; 1024]).unwrap();
        let mut s = DiskByteStream::open(&mut fs, f).unwrap();
        s.put_byte(&mut fs, 0xAA).unwrap(); // dirty page 1
        s.set_position(&mut fs, 600).unwrap(); // crosses to page 2: flush
        s.put_byte(&mut fs, 0xBB).unwrap();
        s.close(&mut fs).unwrap();
        let bytes = fs.read_file(f).unwrap();
        assert_eq!(bytes[0], 0xAA);
        assert_eq!(bytes[600], 0xBB);
    }

    #[test]
    fn word_stream_round_trip() {
        let mut fs = fresh_fs();
        let f = file_named(&mut fs, "w.words");
        let words: Vec<u16> = (0..700u16).map(|i| i.wrapping_mul(257)).collect();
        let mut s = DiskWordStream::open(&mut fs, f).unwrap();
        crate::write_all(&mut s, &mut fs, &words).unwrap();
        s.close(&mut fs).unwrap();
        let mut s = DiskWordStream::open(&mut fs, f).unwrap();
        assert_eq!(crate::read_all(&mut s, &mut fs).unwrap(), words);
    }

    #[test]
    fn word_stream_seek() {
        let mut fs = fresh_fs();
        let f = file_named(&mut fs, "w2.words");
        let words: Vec<u16> = (0..700u16).collect();
        let mut s = DiskWordStream::open(&mut fs, f).unwrap();
        crate::write_all(&mut s, &mut fs, &words).unwrap();
        s.set_position(&mut fs, 300).unwrap();
        assert_eq!(s.get(&mut fs).unwrap(), 300);
        assert_eq!(s.position(), 301);
        s.close(&mut fs).unwrap();
    }

    #[test]
    fn leader_hints_updated_on_close() {
        let mut fs = fresh_fs();
        let f = file_named(&mut fs, "h.dat");
        let mut s = DiskByteStream::open(&mut fs, f).unwrap();
        for _ in 0..1200 {
            s.put_byte(&mut fs, 9).unwrap();
        }
        s.close(&mut fs).unwrap();
        let leader = fs.read_leader(f).unwrap();
        assert_eq!(leader.last_page, 3);
        let (label, _) = fs
            .read_page(PageName::new(f.fv, 3, leader.last_da))
            .unwrap();
        assert_eq!(label.length, 1200 - 1024);
    }

    #[test]
    fn closed_stream_rejects_io() {
        let mut fs = fresh_fs();
        let f = file_named(&mut fs, "c.dat");
        let mut s = DiskByteStream::open(&mut fs, f).unwrap();
        s.close(&mut fs).unwrap();
        assert_eq!(s.get_byte(&mut fs), Err(StreamError::Closed));
        assert_eq!(s.put_byte(&mut fs, 1), Err(StreamError::Closed));
        // Closing twice is fine.
        s.close(&mut fs).unwrap();
    }

    #[test]
    fn sequential_read_uses_readahead() {
        let mut fs = fresh_fs();
        let f = file_named(&mut fs, "seq.dat");
        let bytes: Vec<u8> = (0..2500u32).map(|i| (i % 241) as u8).collect();
        fs.write_file(f, &bytes).unwrap();
        let mut s = DiskByteStream::open(&mut fs, f).unwrap();
        let mut back = Vec::new();
        loop {
            match s.get_byte(&mut fs) {
                Ok(b) => back.push(b),
                Err(StreamError::EndOfStream) => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(back, bytes);
        // Five pages: the crossing into page 2 prefetches 3..5; the three
        // later crossings are served from memory.
        let stats = fs.disk().stats();
        assert_eq!(stats.readahead_prefetched, 3);
        assert_eq!(stats.readahead_hits, 3);
    }

    #[test]
    fn readahead_is_dropped_when_the_file_is_rewritten() {
        let mut fs = fresh_fs();
        let f = file_named(&mut fs, "fresh.dat");
        let old: Vec<u8> = vec![1; 2500];
        let new: Vec<u8> = vec![2; 2500];
        fs.write_file(f, &old).unwrap();
        let mut s = DiskByteStream::open(&mut fs, f).unwrap();
        // Read pages 1-2 exactly; crossing into page 2 prefetched 3..5.
        for _ in 0..1024 {
            s.get_byte(&mut fs).unwrap();
        }
        // Rewrite the whole file behind the stream's back (same pages, same
        // addresses — a cache keyed by address alone would go stale).
        fs.write_file(f, &new).unwrap();
        // Everything from the next page crossing on must be the new data.
        for (i, &want) in new.iter().enumerate().skip(1024) {
            assert_eq!(s.get_byte(&mut fs).unwrap(), want, "byte {i}");
        }
        assert_eq!(s.get_byte(&mut fs), Err(StreamError::EndOfStream));
    }

    #[test]
    fn readahead_never_masks_a_truncation() {
        let mut fs = fresh_fs();
        let f = file_named(&mut fs, "trunc.dat");
        fs.write_file(f, &vec![1u8; 2500]).unwrap(); // 5 pages
        let mut s = DiskByteStream::open(&mut fs, f).unwrap();
        for _ in 0..1024 {
            s.get_byte(&mut fs).unwrap();
        }
        // Truncate to 3 pages of new data while pages 3..5 sit prefetched.
        let new: Vec<u8> = vec![3u8; 1536];
        fs.write_file(f, &new).unwrap();
        // Page 3 must come back fresh — and the stream must end there, not
        // run on through the stale (now freed) pages 4 and 5.
        for (i, &want) in new.iter().enumerate().skip(1024) {
            assert_eq!(s.get_byte(&mut fs).unwrap(), want, "byte {i}");
        }
        assert_eq!(s.get_byte(&mut fs), Err(StreamError::EndOfStream));
    }

    #[test]
    fn interleaved_stream_writes_invalidate_readahead() {
        let mut fs = fresh_fs();
        let f = file_named(&mut fs, "mix.dat");
        fs.write_file(f, &vec![0u8; 2500]).unwrap();
        let mut s = DiskByteStream::open(&mut fs, f).unwrap();
        for _ in 0..1024 {
            s.get_byte(&mut fs).unwrap(); // prefetches pages 3..5
        }
        // Write one byte into page 4 through a second stream.
        let mut w = DiskByteStream::open(&mut fs, f).unwrap();
        w.set_position(&mut fs, 3 * 512 + 7).unwrap();
        w.put_byte(&mut fs, 0xCC).unwrap();
        w.close(&mut fs).unwrap();
        // Keep reading sequentially: page 4 was prefetched *before* the
        // write, so a cache that survived it would serve the old byte.
        for i in 1024..2500 {
            let expect = if i == 3 * 512 + 7 { 0xCC } else { 0 };
            assert_eq!(s.get_byte(&mut fs).unwrap(), expect, "byte {i}");
        }
        assert_eq!(s.get_byte(&mut fs), Err(StreamError::EndOfStream));
    }

    #[test]
    fn parked_pages_are_absent_until_drained() {
        let mut fs = fresh_fs();
        let f = file_named(&mut fs, "wb.dat");
        fs.write_file(f, &vec![0u8; 8 * 512]).unwrap();
        let mut s = DiskByteStream::open(&mut fs, f).unwrap();
        // Cross into page 5: page 1 drained with the first readahead
        // refill, pages 2..4 still parked in the write-behind buffer.
        for _ in 0..(4 * 512 + 10) {
            s.put_byte(&mut fs, 7).unwrap();
        }
        let on_disk = fs.read_file(f).unwrap();
        assert_eq!(&on_disk[..512], &[7u8; 512][..], "page 1 was drained");
        assert_eq!(
            &on_disk[512..1024],
            &[0u8; 512][..],
            "page 2 is parked, not yet on the medium"
        );
        // An explicit flush drains the parked pages as one chained batch.
        s.flush(&mut fs).unwrap();
        let on_disk = fs.read_file(f).unwrap();
        assert_eq!(&on_disk[..4 * 512 + 10], &[7u8; 4 * 512 + 10][..]);
        let stats = fs.disk().io_stats();
        assert_eq!(stats.wb_drains, 2);
        assert_eq!(stats.wb_coalesced, 4);
        s.close(&mut fs).unwrap();
    }

    #[test]
    fn failed_drain_write_reparks_and_surfaces_on_flush() {
        use alto_disk::FaultKind;
        let mut fs = fresh_fs();
        let f = file_named(&mut fs, "park.dat");
        fs.write_file(f, &vec![0u8; 8 * 512]).unwrap();
        let page1_da = fs.open_leader(f).unwrap().0.next;
        let page2_da = fs
            .read_page(PageName::new(f.fv, 1, page1_da))
            .unwrap()
            .0
            .next;
        let mut s = DiskByteStream::open(&mut fs, f).unwrap();
        // Cross into page 5: page 1 drains with the readahead refill,
        // pages 2..4 park in the write-behind buffer.
        for _ in 0..(4 * 512 + 10) {
            s.put_byte(&mut fs, 9).unwrap();
        }
        // Page 2's parked write will fail past the retry limit.
        fs.disk_mut()
            .injector_mut()
            .arm(page2_da, FaultKind::NotReady { attempts: 100 });
        assert!(s.flush(&mut fs).is_err(), "drain must surface the failure");
        // The page re-parked rather than being dropped: a second flush
        // still owes the write and still fails.
        assert!(s.flush(&mut fs).is_err(), "the page is still owed");
        assert_eq!(
            &fs.read_file(f).unwrap()[512..1024],
            &[0u8; 512][..],
            "the failed write must not land"
        );
        // Once the drive recovers, the parked page drains and every byte
        // the caller wrote is on the medium.
        fs.disk_mut().injector_mut().disarm(page2_da);
        s.flush(&mut fs).unwrap();
        s.close(&mut fs).unwrap();
        let on_disk = fs.read_file(f).unwrap();
        assert_eq!(&on_disk[..4 * 512 + 10], &[9u8; 4 * 512 + 10][..]);
        let stats = fs.disk().io_stats();
        assert!(stats.hard_failures >= 2);
    }

    #[test]
    fn bulk_round_trip_with_odd_edges() {
        let mut fs = fresh_fs();
        let f = file_named(&mut fs, "bulk.dat");
        let bytes: Vec<u8> = (0..3000u32).map(|i| (i % 253) as u8).collect();
        let mut s = DiskByteStream::open(&mut fs, f).unwrap();
        // Start the bulk write at an odd byte offset.
        s.put_byte(&mut fs, 0xEE).unwrap();
        s.write_bytes(&mut fs, &bytes).unwrap();
        s.close(&mut fs).unwrap();
        let mut want = vec![0xEE];
        want.extend_from_slice(&bytes);
        assert_eq!(fs.read_file(f).unwrap(), want);
        // Read back in ragged chunks through a fresh stream.
        let mut s = DiskByteStream::open(&mut fs, f).unwrap();
        let mut back = Vec::new();
        let mut chunk = [0u8; 7];
        loop {
            let n = s.read_bytes(&mut fs, &mut chunk).unwrap();
            back.extend_from_slice(&chunk[..n]);
            if n < chunk.len() {
                break;
            }
        }
        assert_eq!(back, want);
        // And an odd-offset seek followed by a large read.
        s.set_position(&mut fs, 1001).unwrap();
        let mut tail = vec![0u8; 800];
        assert_eq!(s.read_bytes(&mut fs, &mut tail).unwrap(), 800);
        assert_eq!(tail, &want[1001..1801]);
        s.close(&mut fs).unwrap();
    }

    #[test]
    fn write_behind_off_never_parks() {
        let mut fs = fresh_fs();
        let f = file_named(&mut fs, "abl.dat");
        fs.write_file(f, &vec![0u8; 6 * 512]).unwrap();
        let mut s = DiskByteStream::open(&mut fs, f).unwrap();
        s.set_write_behind(&mut fs, false).unwrap();
        for _ in 0..(3 * 512) {
            s.put_byte(&mut fs, 9).unwrap();
        }
        s.close(&mut fs).unwrap();
        assert_eq!(fs.disk().io_stats().wb_drains, 0);
        assert_eq!(&fs.read_file(f).unwrap()[..3 * 512], &[9u8; 3 * 512][..]);
    }

    #[test]
    fn readahead_survives_the_streams_own_drain() {
        let mut fs = fresh_fs();
        let f = file_named(&mut fs, "ra.dat");
        fs.write_file(f, &vec![0u8; 8 * 512]).unwrap();
        let mut s = DiskByteStream::open(&mut fs, f).unwrap();
        for _ in 0..(8 * 512) {
            s.put_byte(&mut fs, 5).unwrap();
        }
        s.close(&mut fs).unwrap();
        // Crossings into pages 3..5 and 7..8 are served from the readahead
        // buffer: the stream's own drains re-stamp the epoch instead of
        // poisoning its prefetched copies.
        let stats = fs.disk().stats();
        assert_eq!(stats.readahead_hits, 5);
        assert_eq!(fs.read_file(f).unwrap(), vec![5u8; 8 * 512]);
    }

    #[test]
    fn two_streams_on_different_files() {
        let mut fs = fresh_fs();
        let a = file_named(&mut fs, "a.dat");
        let b = file_named(&mut fs, "b.dat");
        let mut sa = DiskByteStream::open(&mut fs, a).unwrap();
        let mut sb = DiskByteStream::open(&mut fs, b).unwrap();
        for i in 0..100u8 {
            sa.put_byte(&mut fs, i).unwrap();
            sb.put_byte(&mut fs, 100 - i).unwrap();
        }
        sa.close(&mut fs).unwrap();
        sb.close(&mut fs).unwrap();
        assert_eq!(fs.read_file(a).unwrap()[3], 3);
        assert_eq!(fs.read_file(b).unwrap()[3], 97);
    }
}
