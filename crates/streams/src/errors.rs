//! Stream error types.

use std::fmt;

use alto_fs::FsError;

/// Errors surfaced by stream operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// No more input (the Get counterpart of `endof`).
    EndOfStream,
    /// The operation is not defined for this stream type ("normally only
    /// one of [Get/Put] is defined", §2).
    NotSupported(&'static str),
    /// The stream has been closed.
    Closed,
    /// The underlying file system failed.
    Fs(FsError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::EndOfStream => f.write_str("end of stream"),
            StreamError::NotSupported(op) => {
                write!(f, "operation \"{op}\" not defined for this stream")
            }
            StreamError::Closed => f.write_str("stream is closed"),
            StreamError::Fs(e) => write!(f, "file system error: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<FsError> for StreamError {
    fn from(e: FsError) -> Self {
        StreamError::Fs(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(StreamError::EndOfStream.to_string(), "end of stream");
        assert!(StreamError::NotSupported("put").to_string().contains("put"));
        assert!(StreamError::Closed.to_string().contains("closed"));
        assert!(StreamError::Fs(FsError::DiskFull)
            .to_string()
            .contains("full"));
    }
}
