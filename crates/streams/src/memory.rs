//! Memory-backed streams (and the null stream).

use crate::errors::StreamError;
use crate::Stream;

/// A stream over an in-memory word vector: reads from the front, appends
/// at the back; `reset` rewinds the read cursor.
#[derive(Debug, Clone, Default)]
pub struct MemoryStream {
    items: Vec<u16>,
    cursor: usize,
    closed: bool,
}

impl MemoryStream {
    /// An empty stream (write, reset, then read back).
    pub fn new() -> MemoryStream {
        MemoryStream::default()
    }

    /// A stream pre-loaded with items, cursor at the front.
    pub fn from_words(items: &[u16]) -> MemoryStream {
        MemoryStream {
            items: items.to_vec(),
            cursor: 0,
            closed: false,
        }
    }

    /// A stream pre-loaded with a string's bytes (one byte per item).
    pub fn from_text(text: &str) -> MemoryStream {
        MemoryStream::from_words(&text.bytes().map(u16::from).collect::<Vec<_>>())
    }

    /// The items written so far (a non-standard operation).
    pub fn contents(&self) -> &[u16] {
        &self.items
    }

    /// Current read position (a non-standard operation).
    pub fn position(&self) -> usize {
        self.cursor
    }

    fn check_open(&self) -> Result<(), StreamError> {
        if self.closed {
            Err(StreamError::Closed)
        } else {
            Ok(())
        }
    }
}

impl<W> Stream<W> for MemoryStream {
    fn get(&mut self, _: &mut W) -> Result<u16, StreamError> {
        self.check_open()?;
        match self.items.get(self.cursor) {
            Some(&item) => {
                self.cursor += 1;
                Ok(item)
            }
            None => Err(StreamError::EndOfStream),
        }
    }

    fn put(&mut self, _: &mut W, item: u16) -> Result<(), StreamError> {
        self.check_open()?;
        self.items.push(item);
        Ok(())
    }

    fn reset(&mut self, _: &mut W) -> Result<(), StreamError> {
        self.check_open()?;
        self.cursor = 0;
        Ok(())
    }

    fn endof(&mut self, _: &mut W) -> Result<bool, StreamError> {
        self.check_open()?;
        Ok(self.cursor >= self.items.len())
    }

    fn close(&mut self, _: &mut W) -> Result<(), StreamError> {
        self.closed = true;
        Ok(())
    }
}

/// The null stream: produces instant end-of-input and swallows output.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullStream;

impl<W> Stream<W> for NullStream {
    fn get(&mut self, _: &mut W) -> Result<u16, StreamError> {
        Err(StreamError::EndOfStream)
    }

    fn put(&mut self, _: &mut W, _: u16) -> Result<(), StreamError> {
        Ok(())
    }

    fn reset(&mut self, _: &mut W) -> Result<(), StreamError> {
        Ok(())
    }

    fn endof(&mut self, _: &mut W) -> Result<bool, StreamError> {
        Ok(true)
    }

    fn close(&mut self, _: &mut W) -> Result<(), StreamError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{read_all, write_all};

    #[test]
    fn write_reset_read() {
        let mut s = MemoryStream::new();
        write_all(&mut s, &mut (), &[10, 20, 30]).unwrap();
        s.reset(&mut ()).unwrap();
        assert_eq!(read_all(&mut s, &mut ()).unwrap(), vec![10, 20, 30]);
        assert!(s.endof(&mut ()).unwrap());
    }

    #[test]
    fn get_past_end() {
        let mut s = MemoryStream::from_words(&[1]);
        assert_eq!(s.get(&mut ()).unwrap(), 1);
        assert_eq!(s.get(&mut ()), Err(StreamError::EndOfStream));
        // Still at end; more gets keep failing (no panic).
        assert_eq!(s.get(&mut ()), Err(StreamError::EndOfStream));
    }

    #[test]
    fn interleaved_put_and_get() {
        // Puts append; gets continue from the cursor.
        let mut s = MemoryStream::from_words(&[1, 2]);
        assert_eq!(s.get(&mut ()).unwrap(), 1);
        s.put(&mut (), 3).unwrap();
        assert_eq!(s.get(&mut ()).unwrap(), 2);
        assert_eq!(s.get(&mut ()).unwrap(), 3);
        assert!(s.endof(&mut ()).unwrap());
    }

    #[test]
    fn from_text_yields_bytes() {
        let mut s = MemoryStream::from_text("Hi");
        assert_eq!(read_all(&mut s, &mut ()).unwrap(), vec![72, 105]);
    }

    #[test]
    fn closed_stream_rejects_everything() {
        let mut s = MemoryStream::from_words(&[1]);
        s.close(&mut ()).unwrap();
        assert_eq!(s.get(&mut ()), Err(StreamError::Closed));
        assert_eq!(s.put(&mut (), 2), Err(StreamError::Closed));
        assert_eq!(s.reset(&mut ()), Err(StreamError::Closed));
        assert_eq!(s.endof(&mut ()), Err(StreamError::Closed));
    }

    #[test]
    fn null_stream() {
        let mut s = NullStream;
        assert_eq!(s.get(&mut ()), Err(StreamError::EndOfStream));
        s.put(&mut (), 42).unwrap();
        assert!(s.endof(&mut ()).unwrap());
        s.reset(&mut ()).unwrap();
        s.close(&mut ()).unwrap();
    }

    #[test]
    fn position_is_reported() {
        let mut s = MemoryStream::from_words(&[5, 6, 7]);
        assert_eq!(s.position(), 0);
        s.get(&mut ()).unwrap();
        s.get(&mut ()).unwrap();
        assert_eq!(s.position(), 2);
    }
}
