//! A stream wrapper that counts traffic.
//!
//! Demonstrates hierarchical composition of abstract objects (§2:
//! "hierarchical structures can be built up in this way"): a
//! `CountingStream` is a stream built out of another stream, adding
//! non-standard operations (`gets()`, `puts()`) without touching the
//! wrapped implementation.

use crate::errors::StreamError;
use crate::Stream;

/// Wraps a stream, counting items got and put.
#[derive(Debug)]
pub struct CountingStream<S> {
    inner: S,
    gets: u64,
    puts: u64,
}

impl<S> CountingStream<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> CountingStream<S> {
        CountingStream {
            inner,
            gets: 0,
            puts: 0,
        }
    }

    /// Items successfully got (non-standard operation).
    pub fn gets(&self) -> u64 {
        self.gets
    }

    /// Items successfully put (non-standard operation).
    pub fn puts(&self) -> u64 {
        self.puts
    }

    /// Unwraps the inner stream.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<W, S: Stream<W>> Stream<W> for CountingStream<S> {
    fn get(&mut self, world: &mut W) -> Result<u16, StreamError> {
        let item = self.inner.get(world)?;
        self.gets += 1;
        Ok(item)
    }

    fn put(&mut self, world: &mut W, item: u16) -> Result<(), StreamError> {
        self.inner.put(world, item)?;
        self.puts += 1;
        Ok(())
    }

    fn reset(&mut self, world: &mut W) -> Result<(), StreamError> {
        self.inner.reset(world)
    }

    fn endof(&mut self, world: &mut W) -> Result<bool, StreamError> {
        self.inner.endof(world)
    }

    fn close(&mut self, world: &mut W) -> Result<(), StreamError> {
        self.inner.close(world)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryStream;
    use crate::{read_all, write_all};

    #[test]
    fn counts_traffic() {
        let mut s = CountingStream::new(MemoryStream::new());
        write_all(&mut s, &mut (), &[1, 2, 3]).unwrap();
        s.reset(&mut ()).unwrap();
        let items = read_all(&mut s, &mut ()).unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(s.puts(), 3);
        assert_eq!(s.gets(), 3);
    }

    #[test]
    fn failed_operations_are_not_counted() {
        let mut s = CountingStream::new(MemoryStream::from_words(&[9]));
        s.get(&mut ()).unwrap();
        assert!(s.get(&mut ()).is_err());
        assert_eq!(s.gets(), 1);
    }

    #[test]
    fn nests_arbitrarily() {
        let mut s = CountingStream::new(CountingStream::new(MemoryStream::new()));
        s.put(&mut (), 5).unwrap();
        assert_eq!(s.puts(), 1);
        let inner = s.into_inner();
        assert_eq!(inner.puts(), 1);
    }
}
