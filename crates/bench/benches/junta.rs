//! E7 — Junta/CounterJunta, program loading, and syscall dispatch.

use alto_bench::harness::{measure, print_table};
use alto_disk::{Disk, DiskDrive, DiskModel};
use alto_machine::Machine;
use alto_os::syscalls::SysCall;
use alto_os::AltoOs;
use alto_sim::{SimClock, Trace};

fn fresh_os() -> AltoOs {
    let clock = SimClock::new();
    let machine = Machine::new(clock.clone(), Trace::new());
    let drive = DiskDrive::with_formatted_pack(clock, Trace::new(), DiskModel::Diablo31, 1);
    AltoOs::install(machine, drive).unwrap()
}

fn main() {
    let mut os = fresh_os();
    let clock = os.fs.disk().clock().clone();
    let mut rows = Vec::new();
    for keep in [1u8, 4, 8, 12] {
        rows.push(measure(
            &clock,
            &format!("junta_counter_junta/{keep}"),
            10,
            || {
                os.junta(keep).unwrap();
                os.counter_junta();
            },
        ));
    }
    print_table("e7_junta", &rows);

    let mut os = fresh_os();
    let clock = os.fs.disk().clock().clone();
    os.store_program(
        "bench.run",
        r#"
        lda 0, k
        jsr @ticks
        halt
ticks:  .fixup "Ticks"
k:      .word 1
        "#,
    )
    .unwrap();
    let mut rows = Vec::new();
    rows.push(measure(&clock, "load_bind_run_program", 10, || {
        os.run_program("bench.run", 1000).unwrap()
    }));
    rows.push(measure(&clock, "putchar_trap", 50, || {
        os.machine.ac[0] = b'x' as u16;
        os.handle_syscall(SysCall::PutChar.code(), 0).unwrap();
    }));
    rows.push(measure(&clock, "ticks_trap", 50, || {
        os.handle_syscall(SysCall::Ticks.code(), 0).unwrap();
    }));
    print_table("e7_loader_syscalls", &rows);
}
