//! E7 — Junta/CounterJunta, program loading, and syscall dispatch.

use alto_disk::{DiskDrive, DiskModel};
use alto_machine::Machine;
use alto_os::syscalls::SysCall;
use alto_os::AltoOs;
use alto_sim::{SimClock, Trace};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fresh_os() -> AltoOs {
    let clock = SimClock::new();
    let machine = Machine::new(clock.clone(), Trace::new());
    let drive = DiskDrive::with_formatted_pack(clock, Trace::new(), DiskModel::Diablo31, 1);
    AltoOs::install(machine, drive).unwrap()
}

fn bench_junta(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_junta");
    let mut os = fresh_os();
    for keep in [1u8, 4, 8, 12] {
        group.bench_with_input(
            BenchmarkId::new("junta_counter_junta", keep),
            &keep,
            |b, &keep| {
                b.iter(|| {
                    os.junta(keep).unwrap();
                    os.counter_junta();
                });
            },
        );
    }
    group.finish();
}

fn bench_loader(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_loader");
    group.sample_size(20);
    let mut os = fresh_os();
    os.store_program(
        "bench.run",
        r#"
        lda 0, k
        jsr @ticks
        halt
ticks:  .fixup "Ticks"
k:      .word 1
        "#,
    )
    .unwrap();
    group.bench_function("load_bind_run_program", |b| {
        b.iter(|| std::hint::black_box(os.run_program("bench.run", 1000).unwrap()));
    });
    group.finish();
}

fn bench_syscall_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_syscalls");
    let mut os = fresh_os();
    group.bench_function("putchar_trap", |b| {
        b.iter(|| {
            os.machine.ac[0] = b'x' as u16;
            os.handle_syscall(SysCall::PutChar.code(), 0).unwrap();
        });
    });
    group.bench_function("ticks_trap", |b| {
        b.iter(|| os.handle_syscall(SysCall::Ticks.code(), 0).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_junta, bench_loader, bench_syscall_dispatch);
criterion_main!(benches);
