//! E4 — the label discipline: allocate, free, overwrite.

use alto_bench::fresh_fs;
use alto_bench::harness::{measure, print_table};
use alto_disk::{Disk, DiskAddress, DiskModel, Label};
use alto_fs::names::{Fv, PageName, SerialNumber};

fn main() {
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let clock = fs.disk().clock().clone();
    let fv = Fv::new(SerialNumber::new(0x2FFF, false), 1);
    let label = |page: u16| Label {
        fid: fv.serial.words(),
        version: 1,
        page_number: page,
        length: 512,
        next: DiskAddress::NIL,
        prev: DiskAddress::NIL,
    };

    let mut rows = Vec::new();
    rows.push(measure(&clock, "allocate_then_free_page", 20, || {
        let da = fs.allocate_page(None, label(1), &[7; 256]).unwrap();
        fs.free_page(PageName::new(fv, 1, da)).unwrap();
        da
    }));

    // Ordinary write to an existing page (label checked, not written).
    let da = fs.allocate_page(None, label(2), &[1; 256]).unwrap();
    let pn = PageName::new(fv, 2, da);
    rows.push(measure(&clock, "ordinary_page_write", 20, || {
        fs.write_page(pn, &[9; 256]).unwrap()
    }));

    rows.push(measure(&clock, "checked_page_read", 20, || {
        fs.read_page(pn).unwrap()
    }));

    // Stale-map allocation: the map says free, the label says busy.
    rows.push(measure(&clock, "allocation_retry_on_stale_map", 20, || {
        fs.descriptor_mut().bitmap.set_free(da);
        fs.descriptor_mut().rotor = da;
        let got = fs.allocate_page(None, label(3), &[2; 256]).unwrap();
        fs.free_page(PageName::new(fv, 3, got)).unwrap();
        got
    }));
    print_table("e4_label_discipline", &rows);
}
