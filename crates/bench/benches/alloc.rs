//! E4 — the label discipline: allocate, free, overwrite.

use alto_bench::fresh_fs;
use alto_disk::{DiskAddress, DiskModel, Label};
use alto_fs::names::{Fv, PageName, SerialNumber};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_alloc_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_label_discipline");
    group.sample_size(20);
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let fv = Fv::new(SerialNumber::new(0x2FFF, false), 1);
    let label = |page: u16| Label {
        fid: fv.serial.words(),
        version: 1,
        page_number: page,
        length: 512,
        next: DiskAddress::NIL,
        prev: DiskAddress::NIL,
    };

    group.bench_function("allocate_then_free_page", |b| {
        b.iter(|| {
            let da = fs.allocate_page(None, label(1), &[7; 256]).unwrap();
            fs.free_page(PageName::new(fv, 1, da)).unwrap();
            std::hint::black_box(da)
        });
    });

    // Ordinary write to an existing page (label checked, not written).
    let da = fs.allocate_page(None, label(2), &[1; 256]).unwrap();
    let pn = PageName::new(fv, 2, da);
    group.bench_function("ordinary_page_write", |b| {
        b.iter(|| std::hint::black_box(fs.write_page(pn, &[9; 256]).unwrap()));
    });

    // Checked read.
    group.bench_function("checked_page_read", |b| {
        b.iter(|| std::hint::black_box(fs.read_page(pn).unwrap()));
    });

    // Stale-map allocation: the map says free, the label says busy.
    group.bench_function("allocation_retry_on_stale_map", |b| {
        b.iter(|| {
            fs.descriptor_mut().bitmap.set_free(da);
            fs.descriptor_mut().rotor = da;
            let got = fs.allocate_page(None, label(3), &[2; 256]).unwrap();
            fs.free_page(PageName::new(fv, 3, got)).unwrap();
            std::hint::black_box(got)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_alloc_free);
criterion_main!(benches);
