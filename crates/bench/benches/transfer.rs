//! E1 — streaming transfer through the full stack (host-time bench of the
//! same code path the experiments binary measures in simulated time).

use alto_bench::{consecutive_file, fresh_fs};
use alto_disk::DiskModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_transfer(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_transfer");
    group.sample_size(20);
    for model in [DiskModel::Diablo31, DiskModel::Trident] {
        let mut fs = fresh_fs(model);
        let f = consecutive_file(&mut fs, "rate.dat", 128);
        group.throughput(Throughput::Bytes(128 * 512));
        group.bench_with_input(
            BenchmarkId::new("read_64kw_file", model.name()),
            &f,
            |b, &f| {
                b.iter(|| std::hint::black_box(fs.read_file(f).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_write");
    group.sample_size(20);
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let f = consecutive_file(&mut fs, "w.dat", 64);
    let bytes = vec![7u8; 64 * 512];
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("overwrite_in_place_64pp", |b| {
        b.iter(|| fs.write_file(std::hint::black_box(f), &bytes).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_transfer, bench_write);
criterion_main!(benches);
