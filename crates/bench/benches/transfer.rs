//! E1 — streaming transfer through the full stack, in simulated time.

use alto_bench::harness::{measure, print_table};
use alto_bench::{consecutive_file, fresh_fs};
use alto_disk::{Disk, DiskModel};

fn main() {
    let mut rows = Vec::new();
    for model in [DiskModel::Diablo31, DiskModel::Trident] {
        let mut fs = fresh_fs(model);
        let clock = fs.disk().clock().clone();
        let f = consecutive_file(&mut fs, "rate.dat", 128);
        rows.push(measure(
            &clock,
            &format!("read_64kw_file/{}", model.name()),
            10,
            || fs.read_file(f).unwrap(),
        ));
    }

    let mut fs = fresh_fs(DiskModel::Diablo31);
    let clock = fs.disk().clock().clone();
    let f = consecutive_file(&mut fs, "w.dat", 64);
    let bytes = vec![7u8; 64 * 512];
    rows.push(measure(&clock, "overwrite_in_place_64pp", 10, || {
        fs.write_file(f, &bytes).unwrap();
    }));
    print_table("e1_transfer", &rows);
}
