//! E6 — OutLoad/InLoad world swaps and the bootstrap.

use alto_disk::{DiskDrive, DiskModel};
use alto_machine::Machine;
use alto_os::{AltoOs, MESSAGE_WORDS};
use alto_sim::{SimClock, Trace};
use criterion::{criterion_group, criterion_main, Criterion};

fn fresh_os() -> AltoOs {
    let clock = SimClock::new();
    let machine = Machine::new(clock.clone(), Trace::new());
    let drive = DiskDrive::with_formatted_pack(clock, Trace::new(), DiskModel::Diablo31, 1);
    AltoOs::install(machine, drive).unwrap()
}

fn bench_swap(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_world_swap");
    group.sample_size(10);
    let mut os = fresh_os();
    let file = os.create_state_file("Bench.state").unwrap();

    group.bench_function("out_load_64kw", |b| {
        b.iter(|| std::hint::black_box(os.out_load(file).unwrap()));
    });
    group.bench_function("in_load_64kw", |b| {
        b.iter(|| os.in_load(file, &[0; MESSAGE_WORDS]).unwrap());
    });
    group.bench_function("coroutine_round_trip", |b| {
        let a = os.create_state_file("A.state").unwrap();
        let bf = os.create_state_file("B.state").unwrap();
        os.out_load(a).unwrap();
        os.out_load(bf).unwrap();
        b.iter(|| {
            os.out_load(a).unwrap();
            os.in_load(bf, &[0; MESSAGE_WORDS]).unwrap();
            os.out_load(bf).unwrap();
            os.in_load(a, &[0; MESSAGE_WORDS]).unwrap();
        });
    });
    group.finish();
}

fn bench_boot(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_bootstrap");
    group.sample_size(10);
    let mut os = fresh_os();
    os.install_boot_file().unwrap();
    group.bench_function("boot_button", |b| {
        b.iter(|| os.bootstrap().unwrap());
    });
    group.bench_function("reinstall_boot_file", |b| {
        b.iter(|| std::hint::black_box(os.install_boot_file().unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_swap, bench_boot);
criterion_main!(benches);
