//! E6 — OutLoad/InLoad world swaps and the bootstrap.

use alto_bench::harness::{measure, print_table};
use alto_disk::{Disk, DiskDrive, DiskModel};
use alto_machine::Machine;
use alto_os::{AltoOs, MESSAGE_WORDS};
use alto_sim::{SimClock, Trace};

fn fresh_os() -> AltoOs {
    let clock = SimClock::new();
    let machine = Machine::new(clock.clone(), Trace::new());
    let drive = DiskDrive::with_formatted_pack(clock, Trace::new(), DiskModel::Diablo31, 1);
    AltoOs::install(machine, drive).unwrap()
}

fn main() {
    let mut os = fresh_os();
    let clock = os.fs.disk().clock().clone();
    let file = os.create_state_file("Bench.state").unwrap();
    let mut rows = Vec::new();

    rows.push(measure(&clock, "out_load_64kw", 5, || {
        os.out_load(file).unwrap()
    }));
    rows.push(measure(&clock, "in_load_64kw", 5, || {
        os.in_load(file, &[0; MESSAGE_WORDS]).unwrap();
    }));
    let a = os.create_state_file("A.state").unwrap();
    let bf = os.create_state_file("B.state").unwrap();
    os.out_load(a).unwrap();
    os.out_load(bf).unwrap();
    rows.push(measure(&clock, "coroutine_round_trip", 5, || {
        os.out_load(a).unwrap();
        os.in_load(bf, &[0; MESSAGE_WORDS]).unwrap();
        os.out_load(bf).unwrap();
        os.in_load(a, &[0; MESSAGE_WORDS]).unwrap();
    }));
    print_table("e6_world_swap", &rows);

    let mut os = fresh_os();
    let clock = os.fs.disk().clock().clone();
    os.install_boot_file().unwrap();
    let mut rows = Vec::new();
    rows.push(measure(&clock, "boot_button", 5, || {
        os.bootstrap().unwrap();
    }));
    rows.push(measure(&clock, "reinstall_boot_file", 5, || {
        os.install_boot_file().unwrap()
    }));
    print_table("e6_bootstrap", &rows);
}
