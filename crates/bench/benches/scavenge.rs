//! E2 — the Scavenger over disks at several utilizations.

use alto_bench::filled_fs;
use alto_fs::Scavenger;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_scavenge(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_scavenge");
    group.sample_size(10);
    for percent in [10u32, 50, 90] {
        group.bench_with_input(
            BenchmarkId::new("full_disk_scavenge", format!("{percent}pct")),
            &percent,
            |b, &percent| {
                b.iter_batched(
                    || filled_fs(percent, 42).crash(),
                    |disk| {
                        let (fs, report) = Scavenger::rebuild(disk).unwrap();
                        std::hint::black_box((fs, report))
                    },
                    criterion::BatchSize::PerIteration,
                );
            },
        );
    }
    group.finish();
}

fn bench_scan_only(c: &mut Criterion) {
    // The label-scan phase isolated: one READ_ALL per sector.
    use alto_disk::{Disk, DiskAddress, SectorBuf, SectorOp};
    let mut group = c.benchmark_group("e2_label_scan");
    group.sample_size(20);
    let fs = filled_fs(50, 7);
    let mut disk = fs.unmount().unwrap();
    let total = disk.geometry().unwrap().sector_count();
    group.bench_function("scan_4872_labels", |b| {
        b.iter(|| {
            let mut live = 0u32;
            for i in 0..total {
                let mut buf = SectorBuf::zeroed();
                if disk
                    .do_op(DiskAddress(i as u16), SectorOp::READ_ALL, &mut buf)
                    .is_ok()
                    && buf.decoded_label().is_in_use()
                {
                    live += 1;
                }
            }
            std::hint::black_box(live)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_scavenge, bench_scan_only);
criterion_main!(benches);
