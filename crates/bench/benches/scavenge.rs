//! E2 — the Scavenger over disks at several utilizations, in simulated
//! time, plus the batched-vs-single-op label sweep the scheduler speeds up.

use alto_bench::filled_fs;
use alto_bench::harness::{measure, print_table, speedup};
use alto_disk::{BatchRequest, Disk, DiskAddress, SectorBuf, SectorOp};
use alto_fs::Scavenger;

fn main() {
    let mut rows = Vec::new();
    for percent in [10u32, 50, 90] {
        let disk = filled_fs(percent, 42).crash();
        let clock = disk.clock().clone();
        let mut slot = Some(disk);
        rows.push(measure(
            &clock,
            &format!("full_disk_scavenge/{percent}pct"),
            1,
            || {
                let (fs, report) = Scavenger::rebuild(slot.take().unwrap()).unwrap();
                let elapsed = report.elapsed;
                slot = Some(fs.crash());
                elapsed
            },
        ));
    }

    // The label-scan phase isolated: one chained batch per cylinder versus
    // one separately issued READ_ALL per sector (the pre-scheduler path).
    let fs = filled_fs(50, 7);
    let mut disk = fs.unmount().unwrap();
    let clock = disk.clock().clone();
    let g = disk.geometry().unwrap();
    let total = g.sector_count();
    let per_cyl = (g.heads * g.sectors) as u32;

    let batched = measure(&clock, "label_scan_batched", 2, || {
        let mut live = 0u32;
        let mut cyl_start = 0u32;
        while cyl_start < total {
            let end = (cyl_start + per_cyl).min(total);
            let mut batch: Vec<BatchRequest> = (cyl_start..end)
                .map(|i| {
                    BatchRequest::new(
                        DiskAddress(i as u16),
                        SectorOp::READ_ALL,
                        SectorBuf::zeroed(),
                    )
                })
                .collect();
            let results = disk.do_batch(&mut batch);
            for (req, r) in batch.iter().zip(results) {
                if r.is_ok() && req.buf.decoded_label().is_in_use() {
                    live += 1;
                }
            }
            cyl_start = end;
        }
        live
    });
    let single = measure(&clock, "label_scan_one_op_at_a_time", 1, || {
        let mut live = 0u32;
        for i in 0..total {
            let mut buf = SectorBuf::zeroed();
            if disk
                .do_op(DiskAddress(i as u16), SectorOp::READ_ALL, &mut buf)
                .is_ok()
                && buf.decoded_label().is_in_use()
            {
                live += 1;
            }
        }
        live
    });
    let win = speedup(single.simulated, batched.simulated);
    rows.push(batched);
    rows.push(single);
    print_table("e2_scavenge", &rows);
    println!("label sweep: chained batches are {win:.1}x faster than single ops");
    assert!(
        win > 3.0,
        "batched label sweep should win >3x, got {win:.1}x"
    );
}
