//! E10 adjunct — packet codec and transfer-protocol benches.

use alto_net::{ping, receive_file, Ether, Packet, PacketType};
use alto_sim::{SimClock, Trace};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn fresh_ether() -> Ether {
    let mut e = Ether::new(SimClock::new(), Trace::new());
    e.attach(1).unwrap();
    e.attach(2).unwrap();
    e
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_codec");
    let p = Packet {
        ptype: PacketType::Data,
        dst_host: 2,
        src_host: 1,
        dst_socket: 0x30,
        src_socket: 0x31,
        seq: 7,
        payload: vec![0xA5A5; 256],
    };
    group.throughput(Throughput::Bytes((p.wire_words() * 2) as u64));
    group.bench_function("encode_page_packet", |b| {
        b.iter(|| std::hint::black_box(p.encode()));
    });
    let wire = p.encode();
    group.bench_function("decode_page_packet", |b| {
        b.iter(|| std::hint::black_box(Packet::decode(&wire).unwrap()));
    });
    group.finish();
}

fn bench_transfer(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_transfer");
    group.sample_size(20);
    for pages in [1usize, 16] {
        let words = vec![0x5A5Au16; pages * 256];
        group.throughput(Throughput::Bytes((words.len() * 2) as u64));
        group.bench_with_input(
            BenchmarkId::new("stop_and_wait", format!("{pages}pp")),
            &words,
            |b, words| {
                let mut e = fresh_ether();
                b.iter(|| {
                    std::hint::black_box(receive_file(&mut e, 1, 2, 0x30, 0x31, words).unwrap())
                });
            },
        );
    }
    group.bench_function("ping", |b| {
        let mut e = fresh_ether();
        b.iter(|| std::hint::black_box(ping(&mut e, 1, 2, 0o77, &[1, 2, 3]).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_codec, bench_transfer);
criterion_main!(benches);
