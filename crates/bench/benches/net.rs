//! E10 adjunct — packet codec and transfer-protocol benches.

use alto_bench::harness::{measure, print_table};
use alto_net::{ping, receive_file, Ether, Packet, PacketType};
use alto_sim::{SimClock, Trace};

fn fresh_ether() -> (SimClock, Ether) {
    let clock = SimClock::new();
    let mut e = Ether::new(clock.clone(), Trace::new());
    e.attach(1).unwrap();
    e.attach(2).unwrap();
    (clock, e)
}

fn main() {
    let p = Packet {
        ptype: PacketType::Data,
        dst_host: 2,
        src_host: 1,
        dst_socket: 0x30,
        src_socket: 0x31,
        seq: 7,
        payload: vec![0xA5A5; 256],
    };
    let codec_clock = SimClock::new();
    let mut rows = Vec::new();
    rows.push(measure(&codec_clock, "encode_page_packet", 100, || {
        p.encode()
    }));
    let wire = p.encode();
    rows.push(measure(&codec_clock, "decode_page_packet", 100, || {
        Packet::decode(&wire).unwrap()
    }));
    print_table("net_codec (host time only)", &rows);

    let mut rows = Vec::new();
    for pages in [1usize, 16] {
        let words = vec![0x5A5Au16; pages * 256];
        let (clock, mut e) = fresh_ether();
        rows.push(measure(
            &clock,
            &format!("stop_and_wait/{pages}pp"),
            10,
            || receive_file(&mut e, 1, 2, 0x30, 0x31, &words).unwrap(),
        ));
    }
    let (clock, mut e) = fresh_ether();
    rows.push(measure(&clock, "ping", 20, || {
        ping(&mut e, 1, 2, 0o77, &[1, 2, 3]).unwrap()
    }));
    print_table("net_transfer", &rows);
}
