//! E5 / E9 — the hint ladder and the consecutive-file guess.

use alto_bench::harness::{measure, print_table};
use alto_bench::{consecutive_file, fresh_fs, scatter_file};
use alto_disk::{Disk, DiskAddress, DiskModel};
use alto_fs::hints::{guess_consecutive, resolve_page, HintStats, PageHints};

fn main() {
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let clock = fs.disk().clock().clone();
    let f = consecutive_file(&mut fs, "h.dat", 40);
    scatter_file(&mut fs, f, 5);
    let root = fs.root_dir();
    let mut stats = HintStats::default();
    let mut rows = Vec::new();

    // Rung 0: direct hit.
    let mut hints = PageHints::bare(f, root, "h.dat");
    let (_, pn, _) = resolve_page(&mut fs, &mut hints, 30, DiskAddress::NIL, &mut stats).unwrap();
    rows.push(measure(&clock, "direct_hit", 20, || {
        resolve_page(&mut fs, &mut hints, 30, pn.da, &mut stats).unwrap()
    }));

    // Rung 1: link chase from the leader, varying the distance.
    for page in [5u16, 20, 35] {
        let mut hints = PageHints::bare(f, root, "h.dat");
        rows.push(measure(&clock, &format!("link_chase/{page}"), 10, || {
            let r = resolve_page(&mut fs, &mut hints, page, DiskAddress::NIL, &mut stats).unwrap();
            hints.every_kth.truncate(1); // forget what was learned
            r
        }));
    }

    // Every-k-th hints.
    for k in [4u16, 16] {
        let hints0 = PageHints::install(&mut fs, root, "h.dat", k).unwrap();
        rows.push(measure(
            &clock,
            &format!("chase_with_k_hints/{k}"),
            10,
            || {
                let mut hints = hints0.clone();
                resolve_page(&mut fs, &mut hints, 35, DiskAddress::NIL, &mut stats).unwrap()
            },
        ));
    }
    print_table("e5_hint_ladder", &rows);

    // E9: the consecutive guess, hit and miss.
    let mut rows = Vec::new();
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let clock = fs.disk().clock().clone();
    let f = consecutive_file(&mut fs, "c.dat", 40);
    let (leader, _) = fs.read_page(f.leader_page()).unwrap();
    let p1 = leader.next;
    rows.push(measure(&clock, "guess_hit", 20, || {
        let hit = guess_consecutive(&mut fs, f.fv, (1, p1), 25).unwrap();
        assert!(hit.is_some());
    }));
    let g = consecutive_file(&mut fs, "s.dat", 40);
    scatter_file(&mut fs, g, 11);
    let (leader, _) = fs.read_page(g.leader_page()).unwrap();
    let q1 = leader.next;
    rows.push(measure(&clock, "guess_miss_rejected_safely", 20, || {
        let hit = guess_consecutive(&mut fs, g.fv, (1, q1), 25).unwrap();
        assert!(hit.is_none());
    }));
    print_table("e9_consecutive_guess", &rows);
}
