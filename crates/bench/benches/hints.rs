//! E5 / E9 — the hint ladder and the consecutive-file guess.

use alto_bench::{consecutive_file, fresh_fs, scatter_file};
use alto_disk::{DiskAddress, DiskModel};
use alto_fs::hints::{guess_consecutive, resolve_page, HintStats, PageHints};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_hint_ladder");
    group.sample_size(20);

    let mut fs = fresh_fs(DiskModel::Diablo31);
    let f = consecutive_file(&mut fs, "h.dat", 40);
    scatter_file(&mut fs, f, 5);
    let root = fs.root_dir();
    let mut stats = HintStats::default();

    // Rung 0: direct hit.
    let mut hints = PageHints::bare(f, root, "h.dat");
    let (_, pn, _) = resolve_page(&mut fs, &mut hints, 30, DiskAddress::NIL, &mut stats).unwrap();
    group.bench_function("direct_hit", |b| {
        b.iter(|| {
            let r = resolve_page(&mut fs, &mut hints, 30, pn.da, &mut stats).unwrap();
            std::hint::black_box(r.2)
        });
    });

    // Rung 1: link chase from the leader, varying the distance.
    for page in [5u16, 20, 35] {
        group.bench_with_input(BenchmarkId::new("link_chase", page), &page, |b, &page| {
            let mut hints = PageHints::bare(f, root, "h.dat");
            b.iter(|| {
                let r =
                    resolve_page(&mut fs, &mut hints, page, DiskAddress::NIL, &mut stats).unwrap();
                hints.every_kth.truncate(1); // forget what was learned
                std::hint::black_box(r.2)
            });
        });
    }

    // Every-k-th hints.
    for k in [4u16, 16] {
        group.bench_with_input(BenchmarkId::new("chase_with_k_hints", k), &k, |b, &k| {
            let hints0 = PageHints::install(&mut fs, root, "h.dat", k).unwrap();
            b.iter(|| {
                let mut hints = hints0.clone();
                let r =
                    resolve_page(&mut fs, &mut hints, 35, DiskAddress::NIL, &mut stats).unwrap();
                std::hint::black_box(r.2)
            });
        });
    }
    group.finish();
}

fn bench_guess(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_consecutive_guess");
    group.sample_size(20);
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let f = consecutive_file(&mut fs, "c.dat", 40);
    let (leader, _) = fs.read_page(f.leader_page()).unwrap();
    let p1 = leader.next;
    group.bench_function("guess_hit", |b| {
        b.iter(|| {
            let hit = guess_consecutive(&mut fs, f.fv, (1, p1), 25).unwrap();
            std::hint::black_box(hit.is_some())
        });
    });
    let g = consecutive_file(&mut fs, "s.dat", 40);
    scatter_file(&mut fs, g, 11);
    let (leader, _) = fs.read_page(g.leader_page()).unwrap();
    let q1 = leader.next;
    group.bench_function("guess_miss_rejected_safely", |b| {
        b.iter(|| {
            let hit = guess_consecutive(&mut fs, g.fv, (1, q1), 25).unwrap();
            std::hint::black_box(hit.is_none())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ladder, bench_guess);
criterion_main!(benches);
