//! E3 — sequential reads over scattered vs compacted layouts, and the
//! compactor itself.

use alto_bench::{consecutive_file, fresh_fs, scatter_file};
use alto_disk::DiskModel;
use alto_fs::compact::Compactor;
use alto_fs::dir;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_seq_read");
    group.sample_size(20);

    let mut fs = fresh_fs(DiskModel::Diablo31);
    let f = consecutive_file(&mut fs, "doc.dat", 40);
    group.bench_function("consecutive_40pp", |b| {
        b.iter(|| std::hint::black_box(fs.read_file(f).unwrap()));
    });

    scatter_file(&mut fs, f, 99);
    group.bench_function("scattered_40pp", |b| {
        b.iter(|| std::hint::black_box(fs.read_file(f).unwrap()));
    });

    Compactor::run(&mut fs).unwrap();
    let root = fs.root_dir();
    let f = dir::lookup(&mut fs, root, "doc.dat").unwrap().unwrap();
    group.bench_function("recompacted_40pp", |b| {
        b.iter(|| std::hint::black_box(fs.read_file(f).unwrap()));
    });
    group.finish();
}

fn bench_compactor(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_compactor");
    group.sample_size(10);
    group.bench_function("compact_8_scattered_files", |b| {
        b.iter_batched(
            || {
                let mut fs = fresh_fs(DiskModel::Diablo31);
                for i in 0..8 {
                    let f = consecutive_file(&mut fs, &format!("f{i}.dat"), 12);
                    scatter_file(&mut fs, f, i as u64 + 1);
                }
                fs
            },
            |mut fs| {
                let report = Compactor::run(&mut fs).unwrap();
                std::hint::black_box(report)
            },
            criterion::BatchSize::PerIteration,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_layouts, bench_compactor);
criterion_main!(benches);
