//! E3 — sequential reads over scattered vs compacted layouts, the
//! compactor itself, and the PR 1 headline: a 100-page sequential read
//! through the rotational-position-aware scheduler versus the same read
//! with scheduling disabled (every sector op issued separately).

use alto_bench::harness::{measure, print_table, speedup};
use alto_bench::{consecutive_file, fresh_fs};
use alto_disk::{Disk, DiskModel, UnscheduledDisk};
use alto_fs::compact::Compactor;
use alto_fs::{dir, FileSystem};

fn main() {
    let mut rows = Vec::new();

    let mut fs = fresh_fs(DiskModel::Diablo31);
    let clock = fs.disk().clock().clone();
    let f = consecutive_file(&mut fs, "doc.dat", 40);
    rows.push(measure(&clock, "consecutive_40pp", 10, || {
        fs.read_file(f).unwrap()
    }));

    alto_bench::scatter_file(&mut fs, f, 99);
    rows.push(measure(&clock, "scattered_40pp", 5, || {
        fs.read_file(f).unwrap()
    }));

    Compactor::run(&mut fs).unwrap();
    let root = fs.root_dir();
    let f = dir::lookup(&mut fs, root, "doc.dat").unwrap().unwrap();
    rows.push(measure(&clock, "recompacted_40pp", 10, || {
        fs.read_file(f).unwrap()
    }));

    // The scheduler ablation: identical 100-page sequential file, read
    // once through the batching scheduler and once with every sector op
    // issued on its own (each separate command pays the issue overhead and
    // misses the next slot — the pre-chaining Alto behaviour, §4).
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let clock = fs.disk().clock().clone();
    let f = consecutive_file(&mut fs, "big.dat", 100);
    let scheduled = measure(&clock, "seq_read_100pp_scheduled", 10, || {
        fs.read_file(f).unwrap()
    });
    let disk = fs.unmount().unwrap();
    let mut fs = FileSystem::mount(UnscheduledDisk::new(disk)).unwrap();
    let unscheduled = measure(&clock, "seq_read_100pp_unscheduled", 2, || {
        fs.read_file(f).unwrap()
    });
    let win = speedup(unscheduled.simulated, scheduled.simulated);
    rows.push(scheduled);
    rows.push(unscheduled);
    print_table("e3_seq_read", &rows);
    println!("scheduler: 100-page sequential read is {win:.1}x faster scheduled");
    assert!(
        win >= 3.0,
        "scheduled read must be >= 3x faster, got {win:.1}x"
    );

    // The compactor itself.
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let clock = fs.disk().clock().clone();
    for i in 0..8 {
        let f = consecutive_file(&mut fs, &format!("f{i}.dat"), 12);
        alto_bench::scatter_file(&mut fs, f, i as u64 + 1);
    }
    let row = measure(&clock, "compact_8_scattered_files", 1, || {
        Compactor::run(&mut fs).unwrap()
    });
    print_table("e3_compactor", &[row]);
}
