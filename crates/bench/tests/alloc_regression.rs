//! Allocation regression test: the pooled steady-state batch read/write
//! paths must not touch the heap at all.
//!
//! The wall-clock bench (`--bin wall`) *reports* allocs/op; this test
//! *pins* the property so a regression fails CI instead of quietly showing
//! up as a worse number in `BENCH_wall.json`. A counting global allocator
//! wraps `System`, the drive is warmed until every free list and scratch
//! vector has its steady-state capacity, and then whole batches are issued
//! with the allocation counter watched across each configuration.

use std::sync::atomic::{AtomicU64, Ordering};

use alto_disk::{pool, BatchRequest, Disk, DiskAddress, DiskDrive, DiskModel, SectorBuf, SectorOp};
use alto_sim::{SimClock, Trace};

// The one other place in the workspace that opts out of the `unsafe_code`
// deny, for the same reason as the wall bench's counter: the impl forwards
// every call unchanged to `System` and only bumps a relaxed counter.
#[allow(unsafe_code)]
mod alloc_count {
    use super::AtomicU64;
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::Ordering;

    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub struct Counting;

    // SAFETY: every method forwards its arguments unchanged to `System`,
    // which upholds the `GlobalAlloc` contract; the counter bump has no
    // effect on the returned memory.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }
    }
}

#[global_allocator]
static ALLOC: alloc_count::Counting = alloc_count::Counting;

fn allocs() -> u64 {
    alloc_count::ALLOCS.load(Ordering::Relaxed)
}

const BATCH: u16 = 256;
const ROUNDS: usize = 32;

/// One test function on purpose: the allocation counter is process-global,
/// so concurrently running test threads would blame each other's
/// allocations. Each phase asserts independently with its own counter
/// window.
#[test]
fn pooled_steady_state_paths_allocate_nothing() {
    let trace = Trace::new();
    trace.set_enabled(false);
    pool::set_enabled(true);
    let mut drive =
        DiskDrive::with_formatted_pack(SimClock::new(), trace.clone(), DiskModel::Diablo31, 1);

    // Caller-side steady state: one request vector reused across rounds, as
    // the fs and write-behind layers do via the pool.
    let mut reads: Vec<BatchRequest> = (0..BATCH)
        .map(|i| BatchRequest::new(DiskAddress(i), SectorOp::READ_ALL, SectorBuf::zeroed()))
        .collect();
    let mut writes: Vec<BatchRequest> = (0..BATCH)
        .map(|i| BatchRequest::new(DiskAddress(i), SectorOp::WRITE, SectorBuf::zeroed()))
        .collect();
    let das: Vec<DiskAddress> = (0..BATCH).map(DiskAddress).collect();

    // Warm-up: grows the drive's planning scratch, the pooled result
    // vectors, and the thread-local free lists to steady-state capacity.
    for _ in 0..4 {
        pool::recycle_results(drive.do_batch(&mut reads));
        pool::recycle_results(drive.do_batch(&mut writes));
        pool::recycle_results(drive.do_batch_read(&das, |_, _| {}));
    }

    // Buffered batch reads: zero heap traffic per op.
    let before = allocs();
    for _ in 0..ROUNDS {
        let results = drive.do_batch(&mut reads);
        assert!(results.iter().all(Result::is_ok));
        pool::recycle_results(results);
    }
    assert_eq!(
        allocs() - before,
        0,
        "steady-state buffered batch reads allocated"
    );

    // Batch writes (full §3.3 check-before-write semantics): zero as well.
    let before = allocs();
    for _ in 0..ROUNDS {
        let results = drive.do_batch(&mut writes);
        assert!(results.iter().all(Result::is_ok));
        pool::recycle_results(results);
    }
    assert_eq!(allocs() - before, 0, "steady-state batch writes allocated");

    // Zero-copy batch reads, with a visitor that actually touches the data.
    let mut checksum = 0u16;
    let before = allocs();
    for _ in 0..ROUNDS {
        let results = drive.do_batch_read(&das, |_, view| {
            for &w in view.data() {
                checksum ^= w;
            }
        });
        assert!(results.iter().all(Result::is_ok));
        pool::recycle_results(results);
    }
    assert_eq!(
        allocs() - before,
        0,
        "steady-state zero-copy batch reads allocated"
    );
    std::hint::black_box(checksum);

    // The ablation switch really is the thing being measured: with pooling
    // off, the same loop must allocate (otherwise the bench's allocs/op
    // column is measuring nothing).
    pool::set_enabled(false);
    let before = allocs();
    pool::recycle_results(drive.do_batch(&mut reads));
    assert!(
        allocs() - before > 0,
        "pooling ablation did not change allocation behavior"
    );
    pool::set_enabled(true);
}
