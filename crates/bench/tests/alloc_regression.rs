//! Allocation regression test: the pooled steady-state batch read/write
//! paths must not touch the heap at all.
//!
//! The wall-clock bench (`--bin wall`) *reports* allocs/op; this test
//! *pins* the property so a regression fails CI instead of quietly showing
//! up as a worse number in `BENCH_wall.json`. A counting global allocator
//! wraps `System`, the drive is warmed until every free list and scratch
//! vector has its steady-state capacity, and then whole batches are issued
//! with the allocation counter watched across each configuration.

use std::sync::atomic::{AtomicU64, Ordering};

use alto_disk::{
    pool, BatchRequest, Disk, DiskAddress, DiskDrive, DiskModel, SectorBuf, SectorOp, WriteSource,
};
use alto_fs::dir;
use alto_net::server::{PAGE_SERVICE_SOCKET, READ_REQUEST};
use alto_net::{ClientConfig, ClientFleet, Ether, Packet, PageServer};
use alto_os::FsPageService;
use alto_sim::{SimClock, SimTime, Trace};
use alto_streams::{DiskByteStream, Stream};

// The one other place in the workspace that opts out of the `unsafe_code`
// deny, for the same reason as the wall bench's counter: the impl forwards
// every call unchanged to `System` and only bumps a relaxed counter.
#[allow(unsafe_code)]
mod alloc_count {
    use super::AtomicU64;
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::Ordering;

    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub struct Counting;

    // SAFETY: every method forwards its arguments unchanged to `System`,
    // which upholds the `GlobalAlloc` contract; the counter bump has no
    // effect on the returned memory.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }
    }
}

#[global_allocator]
static ALLOC: alloc_count::Counting = alloc_count::Counting;

fn allocs() -> u64 {
    alloc_count::ALLOCS.load(Ordering::Relaxed)
}

const BATCH: u16 = 256;
const ROUNDS: usize = 32;

/// One test function on purpose: the allocation counter is process-global,
/// so concurrently running test threads would blame each other's
/// allocations. Each phase asserts independently with its own counter
/// window.
#[test]
fn pooled_steady_state_paths_allocate_nothing() {
    let trace = Trace::new();
    trace.set_enabled(false);
    pool::set_enabled(true);
    let mut drive =
        DiskDrive::with_formatted_pack(SimClock::new(), trace.clone(), DiskModel::Diablo31, 1);

    // Caller-side steady state: one request vector reused across rounds, as
    // the fs and write-behind layers do via the pool.
    let mut reads: Vec<BatchRequest> = (0..BATCH)
        .map(|i| BatchRequest::new(DiskAddress(i), SectorOp::READ_ALL, SectorBuf::zeroed()))
        .collect();
    let mut writes: Vec<BatchRequest> = (0..BATCH)
        .map(|i| BatchRequest::new(DiskAddress(i), SectorOp::WRITE, SectorBuf::zeroed()))
        .collect();
    let das: Vec<DiskAddress> = (0..BATCH).map(DiskAddress).collect();

    // Warm-up: grows the drive's planning scratch, the pooled result
    // vectors, and the thread-local free lists to steady-state capacity.
    for _ in 0..4 {
        pool::recycle_results(drive.do_batch(&mut reads));
        pool::recycle_results(drive.do_batch(&mut writes));
        pool::recycle_results(drive.do_batch_read(&das, |_, _| {}));
    }

    // Buffered batch reads: zero heap traffic per op.
    let before = allocs();
    for _ in 0..ROUNDS {
        let results = drive.do_batch(&mut reads);
        assert!(results.iter().all(Result::is_ok));
        pool::recycle_results(results);
    }
    assert_eq!(
        allocs() - before,
        0,
        "steady-state buffered batch reads allocated"
    );

    // Batch writes (full §3.3 check-before-write semantics): zero as well.
    let before = allocs();
    for _ in 0..ROUNDS {
        let results = drive.do_batch(&mut writes);
        assert!(results.iter().all(Result::is_ok));
        pool::recycle_results(results);
    }
    assert_eq!(allocs() - before, 0, "steady-state batch writes allocated");

    // Zero-copy batch reads, with a visitor that actually touches the data.
    let mut checksum = 0u16;
    let before = allocs();
    for _ in 0..ROUNDS {
        let results = drive.do_batch_read(&das, |_, view| {
            for &w in view.data() {
                checksum ^= w;
            }
        });
        assert!(results.iter().all(Result::is_ok));
        pool::recycle_results(results);
    }
    assert_eq!(
        allocs() - before,
        0,
        "steady-state zero-copy batch reads allocated"
    );
    std::hint::black_box(checksum);

    // Zero-copy batch writes: borrowed data words, in-place label checks,
    // a visitor that reads the captured label back.
    let data = [0u16; alto_disk::DATA_WORDS];
    for _ in 0..4 {
        pool::recycle_results(drive.do_batch_write(
            &das,
            |_| WriteSource {
                header: [0; 2],
                label: [0; 7],
                data: &data,
            },
            |_, _| {},
        ));
    }
    let before = allocs();
    for _ in 0..ROUNDS {
        let results = drive.do_batch_write(
            &das,
            |_| WriteSource {
                header: [0; 2],
                label: [0; 7],
                data: &data,
            },
            |_, view| {
                checksum ^= view.label().words()[0];
            },
        );
        assert!(results.iter().all(Result::is_ok));
        pool::recycle_results(results);
    }
    assert_eq!(
        allocs() - before,
        0,
        "steady-state zero-copy batch writes allocated"
    );
    std::hint::black_box(checksum);

    // Stream steady state: sequential overwrite and sequential read of a
    // 16-page file through a held-open stream, cursor rewound between
    // rounds. This covers the whole stack above the drive — write-behind
    // parks and drains (the zero-copy write path), readahead refills, label
    // verification — plus the stream-side buffer pool. Opening a stream is
    // excluded: the leader cache hands back an owned copy of the leader
    // (its name is a `String`), which is a per-open cost, not a per-page
    // one.
    let mut fs = alto_bench::fresh_fs(DiskModel::Diablo31);
    fs.disk().trace().set_enabled(false);
    let root = fs.root_dir();
    let f = dir::create_named_file(&mut fs, root, "steady.dat").expect("create");
    let bytes = vec![0x5Au8; 16 * 512];
    fs.write_file(f, &bytes).expect("write");
    let mut back = vec![0u8; 16 * 512];

    // The rewind between rounds is excluded too: seeking backward re-opens
    // the leader, and after a write batch the epoch-gated leader cache
    // rightly re-reads and re-installs it (decoding the name). Only the
    // transfer windows themselves are pinned.
    let mut s = DiskByteStream::open(&mut fs, f).expect("open");
    for _ in 0..4 {
        s.write_bytes(&mut fs, &bytes).expect("warm write");
        s.set_position(&mut fs, 0).expect("warm rewind");
    }
    let mut spent = 0;
    for _ in 0..ROUNDS {
        let before = allocs();
        s.write_bytes(&mut fs, &bytes).expect("stream write");
        spent += allocs() - before;
        s.set_position(&mut fs, 0).expect("rewind");
    }
    assert_eq!(spent, 0, "steady-state stream writes allocated");

    for _ in 0..4 {
        let n = s.read_bytes(&mut fs, &mut back).expect("warm read");
        assert_eq!(n, bytes.len());
        s.set_position(&mut fs, 0).expect("warm rewind");
    }
    let mut spent = 0;
    for _ in 0..ROUNDS {
        let before = allocs();
        let n = s.read_bytes(&mut fs, &mut back).expect("stream read");
        assert_eq!(n, bytes.len());
        spent += allocs() - before;
        s.set_position(&mut fs, 0).expect("rewind");
    }
    assert_eq!(spent, 0, "steady-state stream reads allocated");
    s.close(&mut fs).expect("close");
    drop(s);

    // Fault-campaign steady state: whole-file rewrites under a 1-in-1000
    // transient fault rate. The retry path must not allocate either — its
    // backoff bookkeeping is stack state and its trace formatting is lazy
    // (gated off here), and the write path's leader read-modify-write moves
    // cache entries instead of cloning them.
    let mut cfs = alto_bench::fresh_fs(DiskModel::Diablo31);
    cfs.disk().trace().set_enabled(false);
    let root = cfs.root_dir();
    let cf = dir::create_named_file(&mut cfs, root, "campaign.dat").expect("create");
    let cbytes = vec![0xC3u8; 20 * 512];
    cfs.write_file(cf, &cbytes).expect("first write");
    // A much hotter fault rate than the wall bench's 1e-3: a handful of
    // faults fire in *every* measured round, so a single allocation
    // anywhere on the retry path fails loudly instead of flaking in.
    cfs.disk_mut().injector_mut().set_campaign(0xFA17, 1, 100);
    // The injector's armed-fault tables allocate on their first insert —
    // a one-time cost, not a per-fault one. Arm and disarm one fault on
    // each matcher so both tables hold their capacity before measuring.
    let inj = cfs.disk_mut().injector_mut();
    inj.arm(
        DiskAddress(0),
        alto_disk::FaultKind::NotReady { attempts: 1 },
    );
    inj.arm_read(
        DiskAddress(0),
        alto_disk::FaultKind::SoftRead { attempts: 1 },
    );
    inj.disarm(DiskAddress(0));
    for _ in 0..4 {
        cfs.write_file(cf, &cbytes).expect("warm campaign write");
    }
    let fired_before = cfs.disk_mut().injector_mut().fired_count();
    let before = allocs();
    for _ in 0..ROUNDS {
        cfs.write_file(cf, &cbytes).expect("campaign write");
    }
    assert_eq!(
        allocs() - before,
        0,
        "steady-state campaign rewrites allocated"
    );
    assert!(
        cfs.disk_mut().injector_mut().fired_count() > fired_before,
        "campaign fired no faults — the retry path was not measured"
    );

    // Page-server hot path: requests arriving over the ether, batched
    // through `FsPageService`'s address-sorted zero-copy read, replies
    // assembled on pooled payloads. Once sessions exist and every pool and
    // scratch vector has its capacity, a full request/serve/reply/drain
    // round must not touch the heap at all — this is the bench harness's
    // "allocs/request" pinned to its steady-state floor.
    let sclock = SimClock::new();
    let strace = Trace::new();
    strace.set_enabled(false);
    let sdrive =
        DiskDrive::with_formatted_pack(sclock.clone(), strace.clone(), DiskModel::Trident, 1);
    let mut sfs = alto_fs::FileSystem::format(sdrive).expect("format");
    let sroot = sfs.root_dir();
    let sf = dir::create_named_file(&mut sfs, sroot, "served.dat").expect("create");
    sfs.write_file(sf, &vec![0x7Eu8; 16 * 512]).expect("write");
    let mut ether = Ether::new(sclock.clone(), strace);
    ether.attach(1).expect("server host");
    let mut server = PageServer::new(1);
    let mut service = FsPageService::new(&mut sfs);
    let cfg = ClientConfig::new(1, PAGE_SERVICE_SOCKET);
    let mut fleet =
        ClientFleet::new(&mut ether, cfg, 4, |_| "served.dat".to_string()).expect("fleet");
    // Drive the scripted fleet to completion: opens the sessions and grows
    // every buffer. Afterwards, hand-rolled request rounds on the now-warm
    // sessions measure the steady state.
    while !fleet.all_done() {
        let a = fleet.tick(&mut ether).expect("fleet tick");
        let b = server.tick(&mut ether, &mut service).expect("server tick");
        if a + b == 0 {
            ether.idle_wait(SimTime::from_millis(1));
        }
    }
    let client_host = 2u8; // first fleet host: its session (socket 0x100) is open
    let mut drained: Vec<Packet> = Vec::new();
    let mut round = |measured: bool| {
        let before = allocs();
        for page in 1..=16u16 {
            let mut payload = alto_net::pool::words_vec();
            payload.extend_from_slice(&[0, page]); // handle 0 in the open session
            ether
                .send(Packet {
                    ptype: READ_REQUEST,
                    dst_host: 1,
                    src_host: client_host,
                    dst_socket: PAGE_SERVICE_SOCKET,
                    src_socket: alto_net::client::FLEET_SOCKET_BASE,
                    seq: page,
                    payload,
                })
                .expect("send");
        }
        ether.idle_wait(SimTime::from_millis(5));
        server.tick(&mut ether, &mut service).expect("server tick");
        ether.idle_wait(SimTime::from_millis(30));
        ether
            .drain_arrived(client_host, &mut drained)
            .expect("drain");
        let got = drained.len();
        for pkt in drained.drain(..) {
            alto_net::pool::recycle_words(pkt.payload);
        }
        assert_eq!(got, 16, "not every page reply arrived");
        if measured {
            assert_eq!(allocs() - before, 0, "server hot path allocated");
        }
    };
    for _ in 0..4 {
        round(false);
    }
    for _ in 0..ROUNDS {
        round(true);
    }

    // The ablation switch really is the thing being measured: with pooling
    // off, the same loop must allocate (otherwise the bench's allocs/op
    // column is measuring nothing).
    pool::set_enabled(false);
    let before = allocs();
    pool::recycle_results(drive.do_batch(&mut reads));
    assert!(
        allocs() - before > 0,
        "pooling ablation did not change allocation behavior"
    );
    pool::set_enabled(true);
}
