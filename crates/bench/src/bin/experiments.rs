//! Regenerates every quantitative claim in the paper (experiments E1–E10,
//! see `DESIGN.md`), reporting **simulated time** from the device models.
//!
//! ```text
//! cargo run -p alto-bench --bin experiments             # all experiments
//! cargo run -p alto-bench --bin experiments -- e3 e5    # a subset
//! cargo run -p alto-bench --bin experiments -- pr2 --json BENCH_pr2.json
//! ```
//!
//! The `pr2` experiment measures the in-core hint cache (directory name
//! index, leader cache, placement-aware allocation) against its ablation;
//! `pr3` measures the write-behind pipeline (delayed-write stream
//! buffering and dual-drive batch overlap) against its ablations;
//! `pr4` measures transient-fault recovery (bounded retry vs the
//! abort-immediately ablation) and the retry layer's zero-fault overhead.
//! `--json <path>` additionally writes the numbers as machine-readable
//! JSON for CI to archive and diff.

use alto_bench::{consecutive_file, filled_fs, fragmented_fs, fresh_fs, scatter_file};
use alto_disk::{Disk, DiskAddress, DiskDrive, DiskModel};
use alto_fs::compact::Compactor;
use alto_fs::hints::{guess_consecutive, resolve_page, HintOutcome, HintStats, PageHints};
use alto_fs::{dir, FileSystem, Scavenger};
use alto_machine::Machine;
use alto_net::{receive_file, Ether};
use alto_os::{AltoOs, MESSAGE_WORDS};
use alto_sim::{SimClock, SimTime, SplitMix64, Trace};

fn main() {
    let mut args: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        if a == "--json" {
            json_path = Some(raw.next().unwrap_or_else(|| "BENCH_pr2.json".to_string()));
        } else {
            args.push(a.to_lowercase());
        }
    }
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    println!("=============================================================");
    println!(" Reproduction of \"An Open Operating System for a Single-User");
    println!(" Machine\" (Lampson & Sproull, SOSP 1979) — all times are");
    println!(" SIMULATED time from the device models (Diablo 31 et al.)");
    println!("=============================================================");

    if want("e1") {
        e1_transfer_rate();
    }
    if want("e2") {
        e2_scavenge_time();
    }
    if want("e3") {
        e3_compaction_speedup();
    }
    if want("e4") {
        e4_label_discipline_cost();
    }
    if want("e5") {
        e5_hint_ladder();
    }
    if want("e6") {
        e6_world_swap();
    }
    if want("e7") {
        e7_junta_levels();
    }
    if want("e8") {
        e8_robustness_campaign();
    }
    if want("e8b") {
        e8b_ablation();
    }
    if want("e9") {
        e9_consecutive_guess();
    }
    if want("e10") {
        e10_activity_switching();
    }
    if want("pr2") {
        pr2_cache_bench(json_path.as_deref());
    }
    if want("pr3") {
        pr3_write_behind_bench(json_path.as_deref());
    }
    if want("pr4") {
        pr4_retry_bench(json_path.as_deref());
    }
}

fn header(id: &str, claim: &str) {
    println!("\n--- {id}: {claim}");
}

/// E1 — "one or two moving-head disk drives, each of which can store 2.5
/// megabytes … and can transfer 64k words in about one second" (§2).
fn e1_transfer_rate() {
    header("E1", "pack capacity and streaming transfer rate (§2)");
    println!(
        "{:<12} {:>12} {:>16} {:>14} {:>12}",
        "model", "capacity", "stream rate", "64K words in", "paper"
    );
    for model in [DiskModel::Diablo31, DiskModel::Trident] {
        let mut fs = fresh_fs(model);
        let f = consecutive_file(&mut fs, "rate.dat", 256); // 64K words
        let clock = fs.disk().clock().clone();
        let t0 = clock.now();
        let bytes = fs.read_file(f).unwrap();
        let dt = clock.now() - t0;
        let words = bytes.len() as f64 / 2.0;
        let rate = words / dt.as_secs_f64();
        let t64k = 65_536.0 / rate;
        let paper = match model {
            DiskModel::Diablo31 => "2.5 MB, ~1 s",
            _ => "2x the 31",
        };
        println!(
            "{:<12} {:>9.2} MB {:>10.1} kw/s {:>12.2} s {:>14}",
            model.name(),
            model.geometry().data_bytes() as f64 / 1e6,
            rate / 1e3,
            t64k,
            paper,
        );
    }
}

/// E2 — "this entire process is called scavenging, and it takes about a
/// minute for a 2.5 megabyte disk" (§3.5).
fn e2_scavenge_time() {
    header(
        "E2",
        "scavenge time for a 2.5 MB disk (§3.5; paper: ~1 minute)",
    );
    println!(
        "{:<14} {:>8} {:>10} {:>12} {:>14}",
        "utilization", "files", "pages", "scavenge", "per sector"
    );
    for percent in [10u32, 50, 90] {
        let fs = filled_fs(percent, 42);
        let disk = fs.unmount().unwrap();
        let (fs2, report) = Scavenger::rebuild(disk).unwrap();
        let per_sector = report.elapsed.as_nanos() / report.sectors_scanned as u64;
        println!(
            "{:<13}% {:>8} {:>10} {:>11.1} s {:>11} µs",
            percent,
            report.files,
            report.live_pages,
            report.elapsed.as_secs_f64(),
            per_sector / 1000,
        );
        drop(fs2);
    }
    println!("(the scan dominates: all labels are read regardless of use)");
}

/// E3 — the compacting scavenger "typically increases the speed with which
/// the files can be read sequentially by an order of magnitude" (§3.5).
fn e3_compaction_speedup() {
    header(
        "E3",
        "sequential read, scattered vs compacted (\u{a7}3.5; paper: ~10x)",
    );
    println!(
        "{:<26} {:>12} {:>12} {:>9}",
        "layout", "read 40 pp", "rate", "speedup"
    );
    // A 40-page file, then three layouts of the same bytes: freshly
    // written (near-consecutive), 12-way interleaved, and uniformly random
    // scatter (the worst case months of editing converge to).
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let clock = fs.disk().clock().clone();
    let f = consecutive_file(&mut fs, "doc.dat", 40);
    // Put some other files on disk so compaction has company.
    for i in 0..6 {
        consecutive_file(&mut fs, &format!("other-{i}.dat"), 10);
    }

    scatter_file(&mut fs, f, 1234);
    let t0 = clock.now();
    let bytes = fs.read_file(f).unwrap();
    let scattered = clock.now() - t0;

    let report = Compactor::run(&mut fs).unwrap();
    assert!(report.consecutive_files >= 1);
    let root = fs.root_dir();
    let f = dir::lookup(&mut fs, root, "doc.dat").unwrap().unwrap();
    let t0 = clock.now();
    let bytes2 = fs.read_file(f).unwrap();
    let compacted = clock.now() - t0;
    assert_eq!(bytes, bytes2);

    // And the in-between case: the 12-way interleave.
    let (mut frag, names) = fragmented_fs(12, 40, 7);
    let fclock = frag.disk().clock().clone();
    let root = frag.root_dir();
    let g = dir::lookup(&mut frag, root, &names[5]).unwrap().unwrap();
    let t0 = fclock.now();
    let fbytes = frag.read_file(g).unwrap();
    let interleaved = fclock.now() - t0;

    let rate = |b: usize, t: SimTime| (b as f64 / 2.0) / t.as_secs_f64() / 1e3;
    for (name, b, t) in [
        ("random scatter", bytes.len(), scattered),
        ("12-way interleaved", fbytes.len(), interleaved),
        ("after compaction", bytes2.len(), compacted),
    ] {
        println!(
            "{:<26} {:>10.0} ms {:>9.1} kw/s {:>8.1}x",
            name,
            t.as_nanos() as f64 / 1e6,
            rate(b, t),
            scattered.as_nanos() as f64 / t.as_nanos() as f64,
        );
    }
}

/// E4 — "this scheme costs a disk revolution each time a page is allocated
/// or freed … on any other write the label is checked, at no cost in time"
/// (§3.3).
fn e4_label_discipline_cost() {
    header("E4", "the cost of the label discipline (\u{a7}3.3)");
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let clock = fs.disk().clock().clone();
    let rev = fs.disk().timing().unwrap().revolution();
    let f = consecutive_file(&mut fs, "target.dat", 64);
    let n = 64u64;

    // Ordinary writes: rewrite every page of the file in place.
    let t0 = clock.now();
    fs.write_file(f, &vec![1u8; 64 * 512]).unwrap();
    let overwrite = clock.now() - t0;

    // Raw page allocation: exactly the check-then-write-label discipline,
    // no file chaining on top.
    let fv = alto_fs::names::Fv::new(alto_fs::names::SerialNumber::new(0x2FFF, false), 1);
    let mut raw_pages = Vec::new();
    let t0 = clock.now();
    for i in 0..n as u16 {
        let label = alto_disk::Label {
            fid: fv.serial.words(),
            version: 1,
            page_number: i,
            length: 512,
            next: DiskAddress::NIL,
            prev: DiskAddress::NIL,
        };
        let da = fs.allocate_page(None, label, &[0; 256]).unwrap();
        raw_pages.push((i, da));
    }
    let raw_alloc = clock.now() - t0;

    // Raw page free: check the old label, write the free label.
    let t0 = clock.now();
    for (i, da) in &raw_pages {
        fs.free_page(alto_fs::names::PageName::new(fv, *i, *da))
            .unwrap();
    }
    let raw_free = clock.now() - t0;

    // File append (allocation plus chaining the predecessor's next link).
    let t0 = clock.now();
    let g = consecutive_file(&mut fs, "alloc.dat", 64);
    let append = clock.now() - t0;

    // Delete a whole file.
    let t0 = clock.now();
    fs.delete_file(g).unwrap();
    let delete = clock.now() - t0;

    let in_revs = |t: SimTime| t.as_nanos() as f64 / rev.as_nanos() as f64 / n as f64;
    println!(
        "{:<30} {:>12} {:>16} {:>10}",
        "operation (64 pages)", "total", "revolutions/page", "paper"
    );
    for (name, t, paper) in [
        ("overwrite in place", overwrite, "~0 extra"),
        ("raw page allocate", raw_alloc, "1"),
        ("raw page free", raw_free, "1"),
        ("file append (+ chain link)", append, "1 + 1"),
        ("file delete", delete, "~1"),
    ] {
        println!(
            "{:<30} {:>9.0} ms {:>16.2} {:>10}",
            name,
            t.as_nanos() as f64 / 1e6,
            in_revs(t),
            paper
        );
    }
}

/// E5 — the hint recovery ladder (§3.6): direct access beats link-chasing
/// beats directory lookup beats scavenging, and every-k-th-page hints
/// bound the chase.
fn e5_hint_ladder() {
    header("E5", "the hint ladder: cost of each recovery rung (§3.6)");
    let pages = 60usize;
    println!(
        "{:<44} {:>12} {:>10}",
        "access path to page 45 of a 60-page file", "time", "outcome"
    );

    // Helper to build a fresh scattered file + hints each time.
    let build = || -> (FileSystem<DiskDrive>, PageHints, SimClock) {
        let (mut fs, names) = fragmented_fs(8, pages, 99);
        let clock = fs.disk().clock().clone();
        let root = fs.root_dir();
        let hints = PageHints::bare(
            dir::lookup(&mut fs, root, &names[3]).unwrap().unwrap(),
            root,
            &names[3],
        );
        (fs, hints, clock)
    };

    let target = 45u16;
    let mut stats = HintStats::default();

    // Rung 0: direct hit (learn the address first, off the books).
    let (mut fs, mut hints, clock) = build();
    let (_, pn, _) =
        resolve_page(&mut fs, &mut hints, target, DiskAddress::NIL, &mut stats).unwrap();
    let t0 = clock.now();
    let (_, _, outcome) = resolve_page(&mut fs, &mut hints, target, pn.da, &mut stats).unwrap();
    report_rung("direct hint hit", clock.now() - t0, outcome);

    // Rung 1: chase links from the leader.
    let (mut fs, mut hints, clock) = build();
    let t0 = clock.now();
    let (_, _, outcome) =
        resolve_page(&mut fs, &mut hints, target, DiskAddress::NIL, &mut stats).unwrap();
    report_rung("link chase from the leader", clock.now() - t0, outcome);

    // Rung 1': every-k-th-page hints bound the chase.
    for k in [16u16, 8, 4] {
        let (mut fs, _, clock) = build();
        let root = fs.root_dir();
        let mut hints = PageHints::install(&mut fs, root, "frag-03.dat", k).unwrap();
        let t0 = clock.now();
        let (_, _, outcome) =
            resolve_page(&mut fs, &mut hints, target, DiskAddress::NIL, &mut stats).unwrap();
        report_rung(
            &format!("chase with every-{k}-page hints"),
            clock.now() - t0,
            outcome,
        );
    }

    // Rung 2: stale leader address -> FV lookup in the directory.
    let (mut fs, mut hints, clock) = build();
    hints.file = alto_fs::names::FileFullName::new(hints.file.fv, DiskAddress(4000));
    let t0 = clock.now();
    let (_, _, outcome) =
        resolve_page(&mut fs, &mut hints, target, DiskAddress::NIL, &mut stats).unwrap();
    report_rung(
        "directory lookup (stale leader hint)",
        clock.now() - t0,
        outcome,
    );

    // Rung 3: recreated file -> string lookup.
    let (mut fs, mut hints, clock) = build();
    let root = fs.root_dir();
    let old = dir::lookup(&mut fs, root, "frag-03.dat").unwrap().unwrap();
    dir::remove(&mut fs, root, "frag-03.dat").unwrap();
    fs.delete_file(old).unwrap();
    let new = dir::create_named_file(&mut fs, root, "frag-03.dat").unwrap();
    fs.write_file(new, &vec![3u8; pages * 512]).unwrap();
    let t0 = clock.now();
    let (_, _, outcome) =
        resolve_page(&mut fs, &mut hints, target, DiskAddress::NIL, &mut stats).unwrap();
    report_rung("string lookup (file recreated)", clock.now() - t0, outcome);

    // Rung 4: scrambled directory -> the Scavenger.
    let (mut fs, mut hints, clock) = build();
    hints.file = alto_fs::names::FileFullName::new(hints.file.fv, DiskAddress(4000));
    let root = fs.root_dir();
    fs.write_file(root, &[0xFF; 64]).unwrap();
    let t0 = clock.now();
    let (_, _, outcome) =
        resolve_page(&mut fs, &mut hints, target, DiskAddress::NIL, &mut stats).unwrap();
    report_rung(
        "scavenge (directories destroyed)",
        clock.now() - t0,
        outcome,
    );

    println!(
        "(ladder stats: {} direct, {} chases [{} hops], {} dir, {} string, {} scavenges)",
        stats.direct_hits,
        stats.link_chases,
        stats.link_hops,
        stats.dir_lookups,
        stats.string_lookups,
        stats.scavenges
    );

    // The directory rungs (2 and 3) are the ones the in-core name index
    // accelerates: recover 8 files through stale leader hints, once with
    // the hint cache on (only the first recovery pays a directory scan)
    // and once with it off (every recovery re-reads the directory).
    println!("\n8 stale-leader recoveries through rung 2, hint cache on vs off:");
    println!(
        "{:<12} {:>7} {:>7} {:>6} {:>7} {:>9} {:>13}",
        "hint cache", "direct", "chase", "dir", "string", "scavenge", "total time"
    );
    for enabled in [true, false] {
        let (mut fs, _, clock) = build();
        fs.set_hint_cache_enabled(enabled);
        let root = fs.root_dir();
        let mut s = HintStats::default();
        let t0 = clock.now();
        for i in 0..8 {
            let name = format!("frag-{i:02}.dat");
            let file = dir::lookup(&mut fs, root, &name).unwrap().unwrap();
            let mut hints = PageHints::bare(
                alto_fs::names::FileFullName::new(file.fv, DiskAddress(4000)),
                root,
                &name,
            );
            resolve_page(&mut fs, &mut hints, 20, DiskAddress::NIL, &mut s).unwrap();
        }
        let dt = clock.now() - t0;
        println!(
            "{:<12} {:>7} {:>7} {:>6} {:>7} {:>9} {:>10.1} ms",
            if enabled { "on" } else { "off" },
            s.direct_hits,
            s.link_chases,
            s.dir_lookups,
            s.string_lookups,
            s.scavenges,
            dt.as_nanos() as f64 / 1e6,
        );
    }
}

fn report_rung(name: &str, t: SimTime, outcome: HintOutcome) {
    println!(
        "{name:<44} {:>9.1} ms {:>10}",
        t.as_nanos() as f64 / 1e6,
        match outcome {
            HintOutcome::DirectHit => "direct",
            HintOutcome::LinkChase { .. } => "chase",
            HintOutcome::DirectoryLookup => "dir",
            HintOutcome::StringLookup => "string",
            HintOutcome::Scavenged => "scavenge",
        }
    );
}

/// E6 — "each routine … requires about a second to complete its
/// operation"; InLoad/OutLoad are "about 900 words"; the message is
/// "about 20 words" (§4.1).
fn e6_world_swap() {
    header("E6", "InLoad/OutLoad world swap (§4.1; paper: ~1 s each)");
    let clock = SimClock::new();
    let machine = Machine::new(clock.clone(), Trace::new());
    let drive = DiskDrive::with_formatted_pack(clock.clone(), Trace::new(), DiskModel::Diablo31, 1);
    let mut os = AltoOs::install(machine, drive).unwrap();

    let t0 = clock.now();
    let file = os.create_state_file("World.state").unwrap();
    let create = clock.now() - t0;

    let t0 = clock.now();
    os.out_load(file).unwrap();
    let out = clock.now() - t0;

    let t0 = clock.now();
    os.in_load(file, &[0; MESSAGE_WORDS]).unwrap();
    let inl = clock.now() - t0;

    let t0 = clock.now();
    os.install_boot_file().unwrap();
    let boot_install = clock.now() - t0;
    let t0 = clock.now();
    os.bootstrap().unwrap();
    let boot = clock.now() - t0;

    println!("{:<36} {:>12} {:>10}", "operation", "time", "paper");
    for (name, t, paper) in [
        ("create state file (install phase)", create, "(once)"),
        ("OutLoad (in-place, streaming)", out, "~1 s"),
        ("InLoad", inl, "~1 s"),
        ("install boot file (first time)", boot_install, "(once)"),
        ("bootstrap button", boot, "~1 s"),
    ] {
        println!("{name:<36} {:>10.2} s {:>10}", t.as_secs_f64(), paper);
    }
    println!(
        "(level 1, holding OutLoad/InLoad/CounterJunta, is {} words; paper: ~900.",
        os.levels().level(1).unwrap().words
    );
    println!(" the InLoad message vector is {MESSAGE_WORDS} words; paper: ~20)");
}

/// E7 — the Junta level table (§5.2).
fn e7_junta_levels() {
    header(
        "E7",
        "Junta levels: resident sizes and what each Junta frees (§5.2)",
    );
    let clock = SimClock::new();
    let machine = Machine::new(clock.clone(), Trace::new());
    let drive = DiskDrive::with_formatted_pack(clock, Trace::new(), DiskModel::Diablo31, 1);
    let os = AltoOs::install(machine, drive).unwrap();
    println!(
        "{:<4} {:<42} {:>7} {:>10} {:>12}",
        "lvl", "contents (paper's list)", "words", "resident", "prog. space"
    );
    for keep in (1..=13u8).rev() {
        // A fresh OS each time so the freed numbers are per-level.
        let clock = SimClock::new();
        let machine = Machine::new(clock.clone(), Trace::new());
        let drive = DiskDrive::with_formatted_pack(clock, Trace::new(), DiskModel::Diablo31, 1);
        let mut o = AltoOs::install(machine, drive).unwrap();
        o.junta(keep).unwrap();
        let level = os.levels().level(keep).unwrap();
        println!(
            "{:<4} {:<42} {:>7} {:>10} {:>12}",
            keep,
            level.name,
            level.words,
            o.levels().resident_words(),
            o.levels().resident_base() as u32 - 0o400,
        );
    }
    println!("(prog. space = words between the loader's base at 0o400 and the resident floor)");
}

/// E8 — robustness: "the incidence of complaints about lost information is
/// negligible" (§6). A fault-injection campaign.
fn e8_robustness_campaign() {
    header(
        "E8",
        "fault-injection campaign: label checks + Scavenger (§3.3, §6)",
    );
    let runs = 20;
    let mut total_files = 0u32;
    let mut intact = 0u32;
    let mut truncated = 0u32;
    let mut lost = 0u32;
    let mut scavenges_ok = 0u32;
    for seed in 0..runs {
        let mut rng = SplitMix64::new(seed * 7919 + 13);
        let mut fs = fresh_fs(DiskModel::Diablo31);
        let root = fs.root_dir();
        let mut contents = Vec::new();
        for i in 0..10 {
            let name = format!("f{i}.dat");
            let len = (rng.next_below(5000) + 100) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u16() as u8).collect();
            let f = dir::create_named_file(&mut fs, root, &name).unwrap();
            fs.write_file(f, &bytes).unwrap();
            contents.push((name, bytes));
        }
        // Damage: 3 label smashes, 2 media failures, 1 scrambled dir
        // entry, and a crash (stale map).
        let total = fs.descriptor().bitmap.len() as u64;
        for _ in 0..3 {
            let da = DiskAddress(rng.next_below(total) as u16);
            let pack = fs.disk_mut().pack_mut().unwrap();
            let s = pack.sector_mut(da).unwrap();
            for w in &mut s.label {
                *w = rng.next_u16();
            }
        }
        for _ in 0..2 {
            let da = DiskAddress(rng.next_below(total) as u16);
            fs.disk_mut().pack_mut().unwrap().damage(da);
        }
        let disk = fs.crash();
        let Ok((mut fs, _report)) = Scavenger::rebuild(disk) else {
            continue;
        };
        scavenges_ok += 1;
        let root = fs.root_dir();
        for (name, want) in &contents {
            total_files += 1;
            match dir::lookup(&mut fs, root, name).unwrap() {
                Some(f) => match fs.read_file(f) {
                    Ok(got) if got == *want => intact += 1,
                    Ok(got) if want.starts_with(&got) => truncated += 1,
                    Ok(_) => truncated += 1, // prefix damaged by label smash
                    Err(_) => lost += 1,
                },
                None => lost += 1,
            }
        }
    }
    println!("{runs} campaigns x (3 label smashes + 2 media failures + crash) over 10 files each:");
    println!("  scavenges completed : {scavenges_ok}/{runs}");
    println!(
        "  files intact        : {intact}/{total_files} ({:.1}%)",
        intact as f64 * 100.0 / total_files as f64
    );
    println!("  files truncated     : {truncated} (damage landed on their pages)");
    println!("  files lost          : {lost} (damage landed on their leaders)");
    println!("(nothing was ever silently corrupted: every loss is at a damaged sector)");
}

/// E8b — ablation: the same wild-write campaign as E8's test twin, with
/// the label checks removed. What the mechanism was carrying becomes
/// visible as silent corruption.
fn e8b_ablation() {
    use alto_disk::UncheckedDisk;
    use alto_fs::names::{Fv, PageName, SerialNumber};
    header("E8b", "ablation: the same wild writes WITHOUT label checks");

    let run = |checked: bool| -> (u32, u32) {
        // 8 files, then a wild program writing through bogus hints at
        // every 7th sector.
        let bogus = Fv::new(SerialNumber::new(0x3FFF, false), 1);
        let mut rng = SplitMix64::new(4242);
        let mut contents: Vec<(alto_fs::names::FileFullName, Vec<u8>)> = Vec::new();

        macro_rules! campaign {
            ($fs:expr) => {{
                let root = $fs.root_dir();
                for i in 0..8 {
                    let name = format!("f{i}.dat");
                    let len = (rng.next_below(4000) + 100) as usize;
                    let bytes: Vec<u8> = (0..len).map(|_| rng.next_u16() as u8).collect();
                    let f = dir::create_named_file(&mut $fs, root, &name).unwrap();
                    $fs.write_file(f, &bytes).unwrap();
                    contents.push((f, bytes));
                }
                let total = $fs.descriptor().bitmap.len() as u16;
                for da in (0..total).step_by(7) {
                    let _ =
                        $fs.write_page(PageName::new(bogus, 1, DiskAddress(da)), &[0xDEAD; 256]);
                }
                let mut corrupted = 0u32;
                let mut unreadable = 0u32;
                for (f, want) in &contents {
                    match $fs.read_file(*f) {
                        Ok(got) if got == *want => {}
                        Ok(_) => corrupted += 1,
                        Err(_) => unreadable += 1,
                    }
                }
                (corrupted, unreadable)
            }};
        }

        let clock = SimClock::new();
        let drive = DiskDrive::with_formatted_pack(clock, Trace::new(), DiskModel::Diablo31, 1);
        if checked {
            let mut fs = FileSystem::format(drive).unwrap();
            campaign!(fs)
        } else {
            let mut fs = FileSystem::format(UncheckedDisk::new(drive)).unwrap();
            campaign!(fs)
        }
    };

    let (c_corrupt, c_unread) = run(true);
    let (u_corrupt, u_unread) = run(false);
    println!(
        "{:<28} {:>12} {:>12}",
        "configuration (8 files)", "corrupted", "unreadable"
    );
    println!(
        "{:<28} {:>12} {:>12}",
        "with label checks (§3.3)", c_corrupt, c_unread
    );
    println!(
        "{:<28} {:>12} {:>12}",
        "checks removed (ablation)", u_corrupt, u_unread
    );
    println!("(the check-before-write discipline is the robustness mechanism, not luck)");
}

/// E9 — the consecutive-file guess (§3.6): "a program is free to assume
/// that a file is consecutive … The label check will prevent any incorrect
/// overwriting of data."
fn e9_consecutive_guess() {
    header("E9", "guessed access to consecutive files (§3.6)");
    println!(
        "{:<26} {:>10} {:>12} {:>14}",
        "layout", "hit rate", "guess cost", "chase cost"
    );
    for (name, fragmented) in [("freshly written", false), ("12-way fragmented", true)] {
        let (mut fs, file, clock) = if fragmented {
            let (mut fs, names) = fragmented_fs(12, 30, 5);
            let clock = fs.disk().clock().clone();
            let root = fs.root_dir();
            let f = dir::lookup(&mut fs, root, &names[0]).unwrap().unwrap();
            (fs, f, clock)
        } else {
            let mut fs = fresh_fs(DiskModel::Diablo31);
            let clock = fs.disk().clock().clone();
            let f = consecutive_file(&mut fs, "cons.dat", 30);
            (fs, f, clock)
        };
        // Learn page 1's address.
        let (leader, _) = fs.read_page(file.leader_page()).unwrap();
        let p1 = leader.next;
        let mut hits = 0;
        let tries = 25;
        let t0 = clock.now();
        for j in 2..2 + tries {
            if guess_consecutive(&mut fs, file.fv, (1, p1), j)
                .unwrap()
                .is_some()
            {
                hits += 1;
            }
        }
        let guess_time = clock.now() - t0;
        // Compare: link chase to the same pages.
        let root = fs.root_dir();
        let leader_name = fs.read_leader(file).unwrap().name;
        let mut hints = PageHints::bare(file, root, &leader_name);
        let mut stats = HintStats::default();
        let t0 = clock.now();
        for j in 2..2 + tries {
            resolve_page(&mut fs, &mut hints, j, DiskAddress::NIL, &mut stats).unwrap();
        }
        let chase_time = clock.now() - t0;
        println!(
            "{:<26} {:>8}/{tries} {:>9.0} ms {:>11.0} ms",
            name,
            hits,
            guess_time.as_nanos() as f64 / 1e6,
            chase_time.as_nanos() as f64 / 1e6,
        );
    }
    println!("(a wrong guess is harmless: the label check rejects it in one pass)");
}

/// E10 — the printing server (§4): activity switching by state swap is
/// fast enough to "respond quickly to incoming files".
fn e10_activity_switching() {
    header("E10", "activity switching in the printing server (§4)");
    let clock = SimClock::new();
    let machine = Machine::new(clock.clone(), Trace::new());
    let drive = DiskDrive::with_formatted_pack(clock.clone(), Trace::new(), DiskModel::Diablo31, 1);
    let mut os = AltoOs::install(machine, drive).unwrap();
    let mut ether = Ether::new(clock.clone(), Trace::new());
    ether.attach(1).unwrap();
    ether.attach(2).unwrap();

    let spooler = os.create_state_file("Spooler.state").unwrap();
    let printer = os.create_state_file("Printer.state").unwrap();
    os.out_load(spooler).unwrap();
    os.out_load(printer).unwrap();

    println!(
        "{:<22} {:>14} {:>14} {:>16}",
        "job size", "net transfer", "switch to job", "switch/transfer"
    );
    for pages in [1usize, 4, 16] {
        let words = vec![0x5A5Au16; pages * 256];
        // Job arrives while the "printer" world is in control.
        let t_arrive = clock.now();
        let got = receive_file(&mut ether, 1, 2, 0x30, 0x31, &words).unwrap();
        let t_transferred = clock.now();
        // Printer notices traffic: save printer world, resume spooler.
        os.out_load(printer).unwrap();
        os.in_load(spooler, &[0; MESSAGE_WORDS]).unwrap();
        let t_spooler_running = clock.now();
        assert_eq!(got.len(), words.len());
        let transfer = t_transferred - t_arrive;
        let switch = t_spooler_running - t_transferred;
        println!(
            "{:<19} pp {:>11.1} ms {:>11.1} ms {:>15.1}x",
            pages,
            transfer.as_nanos() as f64 / 1e6,
            switch.as_nanos() as f64 / 1e6,
            switch.as_nanos() as f64 / transfer.as_nanos() as f64,
        );
    }
    println!("(one activity switch = OutLoad + InLoad ≈ 2 s: cheap next to printing a");
    println!(" document, which is why §4 batches switches at job boundaries)");
}

/// PR2 — the in-core hint cache layer (directory name index, leader cache,
/// placement-aware allocation) measured against its ablation. With
/// `--json <path>`, the numbers are also written as machine-readable JSON.
fn pr2_cache_bench(json_path: Option<&str>) {
    use alto_fs::names::{FileFullName, PageName};

    header(
        "PR2",
        "in-core hint cache vs ablation (name index, leader cache, placement)",
    );

    // --- open-by-name over a 300-entry directory -----------------------
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let clock = fs.disk().clock().clone();
    let root = fs.root_dir();
    for i in 0..300 {
        dir::create_named_file(&mut fs, root, &format!("f{i:03}")).unwrap();
    }
    // Remount so the first lookup is genuinely cold: the cache, like any
    // hint, dies with the in-core file system.
    let mut fs = FileSystem::mount(fs.unmount().unwrap()).unwrap();
    let root = fs.root_dir();
    let open = |fs: &mut FileSystem<DiskDrive>| {
        let t0 = clock.now();
        let f = dir::lookup(fs, root, "f299").unwrap().unwrap();
        fs.open_leader(f).unwrap();
        clock.now() - t0
    };
    let cold = open(&mut fs);
    let warm = open(&mut fs);
    let stats = fs.cache_stats();
    fs.set_hint_cache_enabled(false);
    let uncached = open(&mut fs);
    fs.set_hint_cache_enabled(true);
    let speedup = uncached.as_nanos() as f64 / warm.as_nanos() as f64;

    println!("open-by-name, last of 300 entries (~10-page directory):");
    println!("{:<26} {:>12}", "path", "sim time");
    for (name, t) in [
        ("cold (scan, builds index)", cold),
        ("warm (index + verify)", warm),
        ("uncached ablation", uncached),
    ] {
        println!("{name:<26} {:>9.2} ms", t.as_nanos() as f64 / 1e6);
    }
    println!("warm speedup over the ablation: {speedup:.1}x (acceptance: >= 5x)");

    // --- placement-aware allocation on a fragmented disk ---------------
    // 15 three-page holes in the front of the disk, then a fresh 40-page
    // file: count the non-consecutive links the allocator produced.
    let build_fragmented = |enabled: bool| -> (FileSystem<DiskDrive>, SimClock) {
        let mut fs = fresh_fs(DiskModel::Diablo31);
        let clock = fs.disk().clock().clone();
        let root = fs.root_dir();
        for i in 0..30 {
            let f = dir::create_named_file(&mut fs, root, &format!("fill-{i:02}")).unwrap();
            fs.write_file(f, &vec![0u8; 3 * 512]).unwrap();
        }
        for i in (0..30).step_by(2) {
            let f = dir::remove(&mut fs, root, &format!("fill-{i:02}"))
                .unwrap()
                .unwrap();
            fs.delete_file(f).unwrap();
        }
        // Remount: the next-fit rotor, like all in-core state, resets, so
        // the fresh file is written by a newly booted system onto an aged
        // disk whose front is riddled with holes.
        let mut fs = FileSystem::mount(fs.unmount().unwrap()).unwrap();
        fs.set_hint_cache_enabled(enabled);
        (fs, clock)
    };
    let chain_jumps = |fs: &mut FileSystem<DiskDrive>, f: FileFullName| -> (u32, u32) {
        let (leader, _) = fs.read_page(f.leader_page()).unwrap();
        let (mut da, mut page) = (leader.next, 1u16);
        let (mut jumps, mut links) = (0u32, 0u32);
        loop {
            let (label, _) = fs.read_page(PageName::new(f.fv, page, da)).unwrap();
            if label.next.is_nil() {
                break;
            }
            if label.next.0 != da.0.wrapping_add(1) {
                jumps += 1;
            }
            links += 1;
            da = label.next;
            page += 1;
        }
        (jumps, links)
    };

    let mut placement = Vec::new();
    for enabled in [true, false] {
        let (mut fs, _) = build_fragmented(enabled);
        let root = fs.root_dir();
        let f = dir::create_named_file(&mut fs, root, "fresh.dat").unwrap();
        fs.write_file(f, &vec![7u8; 40 * 512]).unwrap();
        let (jumps, links) = chain_jumps(&mut fs, f);
        placement.push((enabled, jumps, links));
    }
    println!("\nfresh 40-page file on a fragmented disk, data-chain jumps:");
    for (enabled, jumps, links) in &placement {
        println!(
            "  placement {:<4} {jumps:>3} jumps / {links} links",
            if *enabled { "on" } else { "off" },
        );
    }

    // --- sequential read: fresh placement vs after compaction ----------
    let (mut fs, fclock) = build_fragmented(true);
    let root = fs.root_dir();
    let f = dir::create_named_file(&mut fs, root, "fresh.dat").unwrap();
    fs.write_file(f, &vec![7u8; 40 * 512]).unwrap();
    let t0 = fclock.now();
    fs.read_file(f).unwrap();
    let fresh_read = fclock.now() - t0;
    Compactor::run(&mut fs).unwrap();
    let root = fs.root_dir();
    let f = dir::lookup(&mut fs, root, "fresh.dat").unwrap().unwrap();
    let t0 = fclock.now();
    fs.read_file(f).unwrap();
    let compacted_read = fclock.now() - t0;
    let read_ratio = fresh_read.as_nanos() as f64 / compacted_read.as_nanos() as f64;
    println!(
        "\nsequential read of the fresh file: {:.2} ms; after compaction: {:.2} ms ({read_ratio:.2}x, acceptance: <= 2x)",
        fresh_read.as_nanos() as f64 / 1e6,
        compacted_read.as_nanos() as f64 / 1e6,
    );

    // --- scavenge regression guard -------------------------------------
    let filled = filled_fs(50, 7);
    let (_, report) = Scavenger::rebuild(filled.unmount().unwrap()).unwrap();
    let scavenge_s = report.elapsed.as_secs_f64();
    println!("scavenge of a 50%-full disk: {scavenge_s:.1} s (cache adds nothing to it)");

    println!(
        "cache counters: {} name hits, {} name misses, {} leader hits, {} leader misses",
        stats.name_hits, stats.name_misses, stats.leader_hits, stats.leader_misses
    );

    if let Some(path) = json_path {
        let us = |t: alto_sim::SimTime| t.as_nanos() as f64 / 1e3;
        let json = format!(
            "{{\n  \"schema\": \"alto-bench/pr2\",\n  \"open_by_name\": {{\n    \"dir_entries\": 300,\n    \"cold_us\": {:.1},\n    \"warm_us\": {:.1},\n    \"uncached_us\": {:.1},\n    \"warm_speedup\": {:.2}\n  }},\n  \"allocation_locality\": {{\n    \"file_pages\": 40,\n    \"jumps_cache_on\": {},\n    \"jumps_cache_off\": {},\n    \"links\": {}\n  }},\n  \"seq_read\": {{\n    \"fresh_us\": {:.1},\n    \"compacted_us\": {:.1},\n    \"ratio\": {:.3}\n  }},\n  \"scavenge\": {{\n    \"half_full_disk_s\": {:.2}\n  }},\n  \"cache_stats\": {{\n    \"name_hits\": {},\n    \"name_misses\": {},\n    \"leader_hits\": {},\n    \"leader_misses\": {},\n    \"verify_failures\": {},\n    \"invalidations\": {}\n  }}\n}}\n",
            us(cold),
            us(warm),
            us(uncached),
            speedup,
            placement[0].1,
            placement[1].1,
            placement[0].2,
            us(fresh_read),
            us(compacted_read),
            read_ratio,
            scavenge_s,
            stats.name_hits,
            stats.name_misses,
            stats.leader_hits,
            stats.leader_misses,
            stats.verify_failures,
            stats.invalidations,
        );
        std::fs::write(path, json).unwrap();
        println!("(wrote {path})");
    }
}

/// PR3 — the write-behind pipeline: delayed-write stream buffering against
/// the flush-per-crossing ablation, and dual-drive batch overlap against
/// serialized execution. With `--json <path>`, the numbers are also
/// written as machine-readable JSON.
fn pr3_write_behind_bench(json_path: Option<&str>) {
    use alto_disk::{BatchRequest, DualDrive, SectorBuf, SectorOp};
    use alto_streams::{DiskByteStream, Stream};

    header(
        "PR3",
        "write-behind pipeline vs ablation; dual-drive overlap vs serial",
    );

    // --- sequential overwrite through a stream -------------------------
    let pages = 100usize;
    let seq = |wb: bool| -> (SimTime, u64, u64) {
        let mut fs = fresh_fs(DiskModel::Diablo31);
        let clock = fs.disk().clock().clone();
        let f = consecutive_file(&mut fs, "seq.dat", pages);
        let mut s = DiskByteStream::open(&mut fs, f).unwrap();
        s.set_write_behind(&mut fs, wb).unwrap();
        let t0 = clock.now();
        for _ in 0..pages * 512 {
            s.put_byte(&mut fs, 0x5A).unwrap();
        }
        s.flush(&mut fs).unwrap();
        let dt = clock.now() - t0;
        s.close(&mut fs).unwrap();
        let stats = fs.disk().io_stats();
        (dt, stats.wb_drains, stats.wb_coalesced)
    };
    let (wb_on, drains, coalesced) = seq(true);
    let (wb_off, _, _) = seq(false);
    let wb_speedup = wb_off.as_nanos() as f64 / wb_on.as_nanos() as f64;
    println!("sequential overwrite of a {pages}-page file, one byte at a time:");
    println!("{:<38} {:>12}", "write path", "sim time");
    for (name, t) in [
        ("write-behind (coalesced drains)", wb_on),
        ("flush per crossing (ablation)", wb_off),
    ] {
        println!("{name:<38} {:>9.0} ms", t.as_nanos() as f64 / 1e6);
    }
    println!(
        "write-behind speedup: {wb_speedup:.1}x (acceptance: >= 5x); \
         {drains} drains coalesced {coalesced} pages"
    );

    // --- dual-drive batch overlap --------------------------------------
    // 24 sectors alternating between the two units, with seeks between
    // consecutive requests on each unit.
    let requests = 24u16;
    let dual_run = |overlap: bool| -> (SimTime, SimTime) {
        let clock = SimClock::new();
        let mut dual =
            DualDrive::with_formatted_packs(clock.clone(), Trace::new(), DiskModel::Diablo31);
        dual.set_overlap_enabled(overlap);
        let per_drive = (dual.geometry().unwrap().sector_count() / 2) as u16;
        let mut batch: Vec<BatchRequest> = (0..requests)
            .map(|i| {
                let local = 200 + 37 * (i / 2);
                let da = DiskAddress((i % 2) * per_drive + local);
                BatchRequest::new(da, SectorOp::READ_ALL, SectorBuf::zeroed())
            })
            .collect();
        let t0 = clock.now();
        let results = dual.do_batch(&mut batch);
        assert!(results.iter().all(std::result::Result::is_ok));
        (clock.now() - t0, dual.io_stats().overlap_saved)
    };
    let (serial, _) = dual_run(false);
    let (overlapped, saved) = dual_run(true);
    let overlap_ratio = overlapped.as_nanos() as f64 / serial.as_nanos() as f64;
    println!("\n{requests}-request batch spanning both units of a dual drive:");
    println!("{:<38} {:>12}", "execution", "sim time");
    for (name, t) in [
        ("serialized (ablation)", serial),
        ("overlapped arms", overlapped),
    ] {
        println!("{name:<38} {:>9.0} ms", t.as_nanos() as f64 / 1e6);
    }
    println!(
        "overlapped/serial: {overlap_ratio:.2}x (acceptance: <= 0.6x); \
         overlap saved {saved}"
    );

    if let Some(path) = json_path {
        let us = |t: SimTime| t.as_nanos() as f64 / 1e3;
        let json = format!(
            "{{\n  \"schema\": \"alto-bench/pr3\",\n  \"seq_write\": {{\n    \"pages\": {pages},\n    \"write_behind_us\": {:.1},\n    \"ablation_us\": {:.1},\n    \"speedup\": {wb_speedup:.2},\n    \"wb_drains\": {drains},\n    \"wb_coalesced\": {coalesced}\n  }},\n  \"dual_overlap\": {{\n    \"requests\": {requests},\n    \"serial_us\": {:.1},\n    \"overlapped_us\": {:.1},\n    \"ratio\": {overlap_ratio:.3},\n    \"saved_us\": {:.1}\n  }}\n}}\n",
            us(wb_on),
            us(wb_off),
            us(serial),
            us(overlapped),
            us(saved),
        );
        std::fs::write(path, json).unwrap();
        println!("(wrote {path})");
    }
}

/// PR4 — transient faults and bounded retry: a seeded campaign at a 1e-3
/// per-operation fault rate must recover invisibly; with the retry budget
/// ablated to zero the same campaign surfaces errors; and at a zero fault
/// rate the retry layer costs nothing.
fn pr4_retry_bench(json_path: Option<&str>) {
    header(
        "PR4",
        "transient-fault recovery (bounded retry) vs abort-immediately ablation",
    );

    // --- seeded campaign, same fault stream at both retry budgets -------
    let ops = 120usize;
    let campaign = |retries: u32| -> (alto_disk::DriveStats, u64) {
        let mut fs = fresh_fs(DiskModel::Diablo31);
        fs.disk_mut().set_retries(retries);
        fs.disk_mut().injector_mut().set_campaign(0xBEEF, 1, 1000);
        let root = fs.root_dir();
        let mut rng = SplitMix64::new(777);
        let mut caller_errors = 0u64;
        for i in 0..ops {
            let name = format!("w-{}.dat", i % 12);
            let f = match dir::lookup(&mut fs, root, &name) {
                Ok(Some(f)) => f,
                Ok(None) => match dir::create_named_file(&mut fs, root, &name) {
                    Ok(f) => f,
                    Err(_) => {
                        caller_errors += 1;
                        continue;
                    }
                },
                Err(_) => {
                    caller_errors += 1;
                    continue;
                }
            };
            let len = (rng.next_below(3000) + 1) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u16() as u8).collect();
            match fs.write_file(f, &bytes) {
                Err(_) => caller_errors += 1,
                Ok(()) => {
                    if fs.read_file(f).is_err() {
                        caller_errors += 1;
                    }
                }
            }
        }
        (fs.disk().io_stats(), caller_errors)
    };
    let (with_retry, errors_with_retry) = campaign(3);
    let (ablated, errors_ablated) = campaign(0);
    let episodes = with_retry.recovered + with_retry.hard_failures;
    let recovered_fraction = if episodes == 0 {
        1.0
    } else {
        with_retry.recovered as f64 / episodes as f64
    };
    println!("seeded campaign: {ops} file ops at a 1e-3 per-sector-op fault rate:");
    println!(
        "{:<28} {:>6} {:>8} {:>10} {:>6} {:>8}",
        "retry budget", "soft", "retries", "recovered", "hard", "surfaced"
    );
    for (name, s, surfaced) in [
        ("3 attempts (default)", &with_retry, errors_with_retry),
        ("0 attempts (ablation)", &ablated, errors_ablated),
    ] {
        println!(
            "{name:<28} {:>6} {:>8} {:>10} {:>6} {:>8}",
            s.soft_errors, s.retries, s.recovered, s.hard_failures, surfaced
        );
    }
    println!(
        "recovered fraction: {recovered_fraction:.3} (acceptance: >= 0.99 \
         with 0 caller-visible errors; ablation must surface errors)"
    );
    assert!(with_retry.soft_errors > 0, "the campaign never fired");
    assert!(recovered_fraction >= 0.99);
    assert_eq!(errors_with_retry, 0, "a fault reached the caller");
    assert!(errors_ablated > 0, "the ablation surfaced nothing");

    // --- zero-fault overhead -------------------------------------------
    let pages = 100usize;
    let seq_read = |retries: u32| -> SimTime {
        let mut fs = fresh_fs(DiskModel::Diablo31);
        fs.disk_mut().set_retries(retries);
        let clock = fs.disk().clock().clone();
        let f = consecutive_file(&mut fs, "seq.dat", pages);
        let t0 = clock.now();
        fs.read_file(f).unwrap();
        clock.now() - t0
    };
    let retry_on = seq_read(3);
    let retry_off = seq_read(0);
    let overhead = retry_on.as_nanos() as f64 / retry_off.as_nanos() as f64;
    println!("\nzero-fault overhead, {pages}-page sequential read:");
    println!(
        "retry enabled {:.1} ms, retry disabled {:.1} ms, ratio {overhead:.3} \
         (acceptance: <= 1.02)",
        retry_on.as_nanos() as f64 / 1e6,
        retry_off.as_nanos() as f64 / 1e6,
    );
    assert!(overhead <= 1.02);

    if let Some(path) = json_path {
        let us = |t: SimTime| t.as_nanos() as f64 / 1e3;
        let json = format!(
            "{{\n  \"schema\": \"alto-bench/pr4\",\n  \"campaign\": {{\n    \"fault_rate\": 0.001,\n    \"file_ops\": {ops},\n    \"soft_errors\": {},\n    \"retries\": {},\n    \"recovered\": {},\n    \"hard_failures\": {},\n    \"caller_errors\": {},\n    \"recovered_fraction\": {recovered_fraction:.4}\n  }},\n  \"ablation_retries_0\": {{\n    \"soft_errors\": {},\n    \"hard_failures\": {},\n    \"caller_errors\": {}\n  }},\n  \"zero_fault_overhead\": {{\n    \"pages\": {pages},\n    \"retry_on_us\": {:.1},\n    \"retry_off_us\": {:.1},\n    \"ratio\": {overhead:.4}\n  }}\n}}\n",
            with_retry.soft_errors,
            with_retry.retries,
            with_retry.recovered,
            with_retry.hard_failures,
            errors_with_retry,
            ablated.soft_errors,
            ablated.hard_failures,
            errors_ablated,
            us(retry_on),
            us(retry_off),
        );
        std::fs::write(path, json).unwrap();
        println!("(wrote {path})");
    }
}
