//! Wall-clock benchmark: how fast does the *simulator itself* run?
//!
//! Every other bench in this repository reports simulated time — exact and
//! deterministic. This one reports **host** throughput: sector operations
//! per wall-clock second, simulated seconds per wall second, and heap
//! allocations per sector operation, for the workload shapes that dominate
//! the ROADMAP scale scenarios: chained sequential batches at the disk
//! layer (§4 command chaining, the headline before/after trajectory),
//! sequential streaming through the byte-stream and fs layers, random
//! batches, scavenge sweeps, fault campaigns, and a dual-drive spanning
//! batch that exercises the threaded drive timelines.
//!
//! Run with:
//!
//! ```text
//! cargo run -p alto-bench --release --bin wall -- --json BENCH_wall.json
//! ```
//!
//! `--config seed|optimized|both` selects the measured configuration:
//! `seed` recovers the pre-PR6 cost profile through the ablation switches
//! (eager always-on tracing, no buffer pooling, serialized dual-drive
//! arms); `optimized` is the shipping configuration. The emitted JSON holds
//! one point per configuration, so `both` (the default) produces the
//! before/after trajectory in one run. See `docs/PERFORMANCE.md`.

use std::time::Instant;

use alto_bench::fresh_fs;
use alto_disk::{
    BatchRequest, Disk, DiskAddress, DiskDrive, DiskModel, DriveArray, DualDrive, Placement,
    SectorBuf, SectorOp,
};
use alto_fs::dir;
use alto_fs::scavenge::Scavenger;
use alto_fs::FileSystem;
use alto_sim::{SimClock, SplitMix64, Trace};
use alto_streams::{DiskByteStream, Stream};

// A counting global allocator so the bench can report allocations per
// sector operation — the "steady-state ops allocate nothing" claim needs a
// real counter, not inference. This is the one place in the workspace that
// opts out of the `unsafe_code` deny: the impl delegates every call
// straight to `System` and only adds a relaxed counter bump, and it lives
// in a bench binary, never in a library the system links.
#[allow(unsafe_code)]
mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Total allocation events (alloc + realloc + alloc_zeroed) so far.
    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub struct Counting;

    pub fn allocs() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }

    // SAFETY: every method forwards its arguments unchanged to `System`,
    // which upholds the `GlobalAlloc` contract; the counter bump has no
    // effect on the returned memory.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }
    }
}

#[global_allocator]
static ALLOC: alloc_count::Counting = alloc_count::Counting;

/// One measured workload under one configuration.
struct Measurement {
    workload: &'static str,
    /// Sector operations serviced during the measured window.
    ops: u64,
    /// Wall-clock nanoseconds for the measured window.
    wall_ns: u128,
    /// Simulated nanoseconds elapsed during the measured window.
    sim_ns: u64,
    /// Heap allocation events during the measured window.
    allocs: u64,
}

impl Measurement {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / (self.wall_ns as f64 / 1e9)
    }
    /// Simulated seconds that pass per wall-clock second.
    fn sim_per_wall(&self) -> f64 {
        self.sim_ns as f64 / self.wall_ns as f64
    }
    fn allocs_per_op(&self) -> f64 {
        self.allocs as f64 / self.ops.max(1) as f64
    }
}

/// The knobs that separate the seed cost profile from the optimized one.
#[derive(Clone, Copy)]
struct Config {
    name: &'static str,
    /// Eager tracing: every event formatted and buffered (the seed had no
    /// off switch). Optimized runs measure with tracing gated off.
    eager_trace: bool,
    /// Sector-buffer / request-vector pooling in the disk and fs layers.
    pooling: bool,
    /// Dual-drive arms on real OS threads.
    threads: bool,
    /// Zero-copy sector views for the sequential-read workload (the seed
    /// had only the buffered `do_batch` path).
    views: bool,
}

const SEED: Config = Config {
    name: "seed-baseline",
    eager_trace: true,
    pooling: false,
    threads: false,
    views: false,
};

const OPTIMIZED: Config = Config {
    name: "optimized",
    eager_trace: false,
    pooling: true,
    threads: true,
    views: true,
};

fn apply_config(cfg: Config, trace: &Trace) {
    trace.set_enabled(cfg.eager_trace);
    alto_disk::pool::set_enabled(cfg.pooling);
}

/// Runs `f` until it has consumed at least `min_wall_ms` of wall time,
/// then returns the measurement. `f` must return the drive-stats `ops`
/// count consumed per call (its workload is fixed per call).
fn measure(
    workload: &'static str,
    clock: &SimClock,
    min_wall_ms: u64,
    mut f: impl FnMut() -> u64,
) -> Measurement {
    // Warmup: one call, untimed (fills caches and pools).
    f();
    let allocs0 = alloc_count::allocs();
    let sim0 = clock.now();
    let wall0 = Instant::now();
    let mut ops = 0u64;
    loop {
        ops += std::hint::black_box(f());
        if wall0.elapsed().as_millis() as u64 >= min_wall_ms {
            break;
        }
    }
    Measurement {
        workload,
        ops,
        wall_ns: wall0.elapsed().as_nanos(),
        sim_ns: (clock.now() - sim0).as_nanos(),
        allocs: alloc_count::allocs() - allocs0,
    }
}

const PAGES: usize = 100;
const FILE_BYTES: usize = PAGES * 512;

/// Sectors per chained batch in the disk-layer sequential workloads: most
/// of a pack in one command chain, large enough that per-batch planning
/// cost shows up as per-op cost.
const SEQ_BATCH: u16 = 4096;

/// Chained sequential read of [`SEQ_BATCH`] consecutive sectors in one
/// batch at the disk layer, folding a checksum over every delivered data
/// word — the §4 command-chaining shape underneath every streaming
/// workload, and the headline workload for the before/after trajectory.
/// The optimized configuration consumes the sectors through zero-copy
/// views (`do_batch_read`); the seed configuration reproduces the only
/// path the seed had: `do_batch` copying every sector into a caller
/// buffer, checksummed from there.
fn seq_read(cfg: Config, min_wall_ms: u64) -> Measurement {
    let clock = SimClock::new();
    let trace = Trace::new();
    let mut drive =
        DiskDrive::with_formatted_pack(clock.clone(), trace.clone(), DiskModel::Diablo31, 1);
    apply_config(cfg, &trace);
    let das: Vec<DiskAddress> = (0..SEQ_BATCH).map(DiskAddress).collect();
    let mut batch: Vec<BatchRequest> = das
        .iter()
        .map(|&da| BatchRequest::new(da, SectorOp::READ_ALL, SectorBuf::zeroed()))
        .collect();
    let fold = |data: &[u16; 256]| {
        let mut s = 0u16;
        for &w in data {
            s ^= w;
        }
        s
    };
    measure("seq_read", &clock, min_wall_ms, || {
        let before = drive.io_stats().ops;
        let mut sum = 0u16;
        if cfg.views {
            let results = drive.do_batch_read(&das, |_, v| sum ^= fold(v.data()));
            for r in &results {
                assert!(r.is_ok());
            }
            alto_disk::pool::recycle_results(results);
        } else {
            for r in drive.do_batch(&mut batch) {
                assert!(r.is_ok());
            }
            for req in &batch {
                sum ^= fold(&req.buf.data);
            }
        }
        std::hint::black_box(sum);
        // A real client drains the trace as it goes; clearing here keeps the
        // eager configuration's event buffer bounded without hiding its
        // per-event formatting cost.
        trace.clear();
        drive.io_stats().ops - before
    })
}

/// Chained sequential §3.3 write (check header and label, write data) of
/// [`SEQ_BATCH`] consecutive sectors in one batch. The all-zero memory
/// words pattern-match whatever the labels hold, so the workload is
/// repeatable while still paying the full check-before-write path.
fn seq_write(cfg: Config, min_wall_ms: u64) -> Measurement {
    let clock = SimClock::new();
    let trace = Trace::new();
    let mut drive =
        DiskDrive::with_formatted_pack(clock.clone(), trace.clone(), DiskModel::Diablo31, 1);
    apply_config(cfg, &trace);
    let mut batch: Vec<BatchRequest> = (0..SEQ_BATCH)
        .map(|i| BatchRequest::new(DiskAddress(i), SectorOp::WRITE, SectorBuf::zeroed()))
        .collect();
    measure("seq_write", &clock, min_wall_ms, || {
        let before = drive.io_stats().ops;
        for r in drive.do_batch(&mut batch) {
            assert!(r.is_ok());
        }
        trace.clear();
        drive.io_stats().ops - before
    })
}

/// Sequential stream read of a 100-page file into a reusable buffer.
fn stream_read(cfg: Config, min_wall_ms: u64) -> Measurement {
    let mut fs = fresh_fs(DiskModel::Diablo31);
    apply_config(cfg, &fs.disk().trace().clone());
    let root = fs.root_dir();
    let f = dir::create_named_file(&mut fs, root, "seq.dat").expect("create");
    fs.write_file(f, &vec![0xA5u8; FILE_BYTES]).expect("write");
    let clock = fs.disk().clock().clone();
    let mut buf = vec![0u8; FILE_BYTES];
    measure("stream_read", &clock, min_wall_ms, || {
        let before = fs.disk().io_stats().ops;
        let mut s = DiskByteStream::open(&mut fs, f).expect("open");
        let n = s.read_bytes(&mut fs, &mut buf).expect("read");
        assert_eq!(n, FILE_BYTES);
        fs.disk().io_stats().ops - before
    })
}

/// Sequential stream overwrite of a 100-page file (write-behind on).
fn stream_write(cfg: Config, min_wall_ms: u64) -> Measurement {
    let mut fs = fresh_fs(DiskModel::Diablo31);
    apply_config(cfg, &fs.disk().trace().clone());
    let root = fs.root_dir();
    let f = dir::create_named_file(&mut fs, root, "seq.dat").expect("create");
    fs.write_file(f, &vec![0xA5u8; FILE_BYTES]).expect("write");
    let clock = fs.disk().clock().clone();
    let bytes = vec![0x5Au8; FILE_BYTES];
    measure("stream_write", &clock, min_wall_ms, || {
        let before = fs.disk().io_stats().ops;
        let mut s = DiskByteStream::open(&mut fs, f).expect("open");
        s.write_bytes(&mut fs, &bytes).expect("write");
        s.close(&mut fs).expect("close");
        fs.disk().io_stats().ops - before
    })
}

/// Random 16-request read batches over a populated pack.
fn random_batch(cfg: Config, min_wall_ms: u64) -> Measurement {
    let mut fs = fresh_fs(DiskModel::Diablo31);
    apply_config(cfg, &fs.disk().trace().clone());
    let root = fs.root_dir();
    for i in 0..8 {
        let f = dir::create_named_file(&mut fs, root, &format!("r{i}.dat")).expect("create");
        fs.write_file(f, &vec![i as u8; 50 * 512]).expect("write");
    }
    let clock = fs.disk().clock().clone();
    let sectors = fs.disk().geometry().expect("geometry").sector_count() as u64;
    let mut rng = SplitMix64::new(0xBA7C4);
    measure("random_batch", &clock, min_wall_ms, || {
        let before = fs.disk().io_stats().ops;
        let das: Vec<DiskAddress> = (0..16)
            .map(|_| DiskAddress((rng.next_u64() % sectors) as u16))
            .collect();
        let results = alto_fs::page::read_raw_batch(fs.disk_mut(), &das);
        std::hint::black_box(&results);
        fs.disk().io_stats().ops - before
    })
}

/// A full scavenger sweep over a populated pack.
fn scavenge(cfg: Config, min_wall_ms: u64) -> Measurement {
    let mut fs = fresh_fs(DiskModel::Diablo31);
    apply_config(cfg, &fs.disk().trace().clone());
    let root = fs.root_dir();
    for i in 0..10 {
        let f = dir::create_named_file(&mut fs, root, &format!("s{i}.dat")).expect("create");
        fs.write_file(f, &vec![i as u8; 40 * 512]).expect("write");
    }
    let clock = fs.disk().clock().clone();
    measure("scavenge", &clock, min_wall_ms, || {
        let before = fs.disk().io_stats().ops;
        let report = Scavenger::run(&mut fs).expect("scavenge");
        std::hint::black_box(&report);
        fs.disk().io_stats().ops - before
    })
}

/// Rewrite campaign under a 1e-3 transient fault rate with bounded retry.
fn campaign(cfg: Config, min_wall_ms: u64) -> Measurement {
    let mut fs = fresh_fs(DiskModel::Diablo31);
    apply_config(cfg, &fs.disk().trace().clone());
    let root = fs.root_dir();
    let f = dir::create_named_file(&mut fs, root, "c.dat").expect("create");
    let bytes = vec![0xC3u8; 20 * 512];
    fs.write_file(f, &bytes).expect("write");
    fs.disk_mut().injector_mut().set_campaign(0xFA17, 1, 1000);
    let clock = fs.disk().clock().clone();
    measure("campaign", &clock, min_wall_ms, || {
        let before = fs.disk().io_stats().ops;
        fs.write_file(f, &bytes).expect("campaign write");
        fs.disk().io_stats().ops - before
    })
}

/// A 96-request batch spanning both arms of a dual drive — 48 requests per
/// unit, comfortably past the per-share threshold at which the optimized
/// configuration puts the two arms on real host threads.
fn dual_batch(cfg: Config, min_wall_ms: u64) -> Measurement {
    let clock = SimClock::new();
    let trace = Trace::new();
    let mut dual =
        DualDrive::with_formatted_packs(clock.clone(), trace.clone(), DiskModel::Diablo31);
    apply_config(cfg, &trace);
    dual.set_threading_enabled(cfg.threads);
    let per = DiskDrive::with_formatted_pack(SimClock::new(), Trace::new(), DiskModel::Diablo31, 9)
        .geometry()
        .expect("geometry")
        .sector_count() as u16;
    let mut rng = SplitMix64::new(0xD0A1);
    measure("dual_batch", &clock, min_wall_ms, || {
        let before = dual.io_stats().ops;
        let mut batch: Vec<BatchRequest> = (0..96)
            .map(|i| {
                let local = (rng.next_u64() % per as u64) as u16;
                let da = if i % 2 == 0 { local } else { per + local };
                BatchRequest::new(DiskAddress(da), SectorOp::READ_ALL, SectorBuf::zeroed())
            })
            .collect();
        let results = dual.do_batch(&mut batch);
        for r in &results {
            assert!(r.is_ok());
        }
        dual.io_stats().ops - before
    })
}

/// Random read batches through a *mixed-geometry* two-arm array — one
/// Diablo 31 plus one Trident under range placement, the composite-shape
/// fallback path (the capacities do not stack evenly in this order, so the
/// presented geometry degenerates to one sector per track). Addresses span
/// the full global space, so every batch straddles the arm seam and the
/// split/translate/reassemble path runs on both drives each iteration.
fn array_mixed(cfg: Config, min_wall_ms: u64) -> Measurement {
    let clock = SimClock::new();
    let trace = Trace::new();
    let d0 = DiskDrive::with_formatted_pack(clock.clone(), trace.clone(), DiskModel::Trident, 1);
    let d1 = DiskDrive::with_formatted_pack(clock.clone(), trace.clone(), DiskModel::Diablo31, 2);
    let mut arr = DriveArray::new(vec![d0, d1], Placement::Range).expect("mixed range array");
    apply_config(cfg, &trace);
    arr.set_threading_enabled(cfg.threads);
    let total = arr.geometry().expect("geometry").sector_count() as u64;
    let mut rng = SplitMix64::new(0xD1AB10);
    measure("array_mixed", &clock, min_wall_ms, || {
        let before = arr.io_stats().ops;
        let mut batch: Vec<BatchRequest> = (0..ARRAY_RANDOM_BATCH)
            .map(|_| {
                let da = DiskAddress((rng.next_u64() % total) as u16);
                BatchRequest::new(da, SectorOp::READ_ALL, SectorBuf::zeroed())
            })
            .collect();
        let results = arr.do_batch(&mut batch);
        for r in &results {
            assert!(r.is_ok());
        }
        alto_disk::pool::recycle_results(results);
        trace.clear();
        arr.io_stats().ops - before
    })
}

/// Arm counts measured by the drive-array workloads. `k = 1` is the
/// single-arm control every K-scaling ratio in `docs/PERFORMANCE.md` is
/// quoted against.
const ARRAY_KS: [usize; 4] = [1, 2, 4, 8];

/// Requests per array batch in `array_random` — large enough that every
/// arm of the widest array still receives a schedulable share.
const ARRAY_RANDOM_BATCH: usize = 256;

fn array_workload_name(shape: &str, k: usize) -> &'static str {
    match (shape, k) {
        ("seq", 1) => "array_seq_k1",
        ("seq", 2) => "array_seq_k2",
        ("seq", 4) => "array_seq_k4",
        ("seq", 8) => "array_seq_k8",
        ("random", 1) => "array_random_k1",
        ("random", 2) => "array_random_k2",
        ("random", 4) => "array_random_k4",
        ("random", 8) => "array_random_k8",
        ("scavenge", 1) => "array_scavenge_k1",
        ("scavenge", 2) => "array_scavenge_k2",
        ("scavenge", 4) => "array_scavenge_k4",
        ("scavenge", 8) => "array_scavenge_k8",
        _ => unreachable!("unmeasured array workload shape"),
    }
}

/// Chained sequential read of [`SEQ_BATCH`] consecutive *global* sectors
/// through a K-arm [`DriveArray`] under hash placement: consecutive
/// addresses interleave across all arms, so one sequential chain becomes K
/// overlapped per-arm chains and the batch elapses in max-of-arms
/// simulated time. `k = 1` degenerates to a single drive — the control the
/// K× simulated-time ratios are measured against.
fn array_seq(cfg: Config, k: usize, min_wall_ms: u64) -> Measurement {
    let clock = SimClock::new();
    let trace = Trace::new();
    let mut arr = DriveArray::with_arms(
        k,
        Placement::Hash,
        clock.clone(),
        trace.clone(),
        DiskModel::Diablo31,
    );
    apply_config(cfg, &trace);
    arr.set_threading_enabled(cfg.threads);
    let mut batch: Vec<BatchRequest> = (0..SEQ_BATCH)
        .map(|i| BatchRequest::new(DiskAddress(i), SectorOp::READ_ALL, SectorBuf::zeroed()))
        .collect();
    measure(array_workload_name("seq", k), &clock, min_wall_ms, || {
        let before = arr.io_stats().ops;
        let results = arr.do_batch(&mut batch);
        for r in &results {
            assert!(r.is_ok());
        }
        alto_disk::pool::recycle_results(results);
        trace.clear();
        arr.io_stats().ops - before
    })
}

/// Random [`ARRAY_RANDOM_BATCH`]-request read batches over the whole K-arm
/// global address space (hash placement). Random addresses scatter across
/// the arms on their own; the scheduler sorts each arm's share and the
/// timelines overlap.
fn array_random(cfg: Config, k: usize, min_wall_ms: u64) -> Measurement {
    let clock = SimClock::new();
    let trace = Trace::new();
    let mut arr = DriveArray::with_arms(
        k,
        Placement::Hash,
        clock.clone(),
        trace.clone(),
        DiskModel::Diablo31,
    );
    apply_config(cfg, &trace);
    arr.set_threading_enabled(cfg.threads);
    let total = arr.geometry().expect("geometry").sector_count() as u64;
    let mut rng = SplitMix64::new(0xA44A1);
    measure(
        array_workload_name("random", k),
        &clock,
        min_wall_ms,
        || {
            let before = arr.io_stats().ops;
            let mut batch: Vec<BatchRequest> = (0..ARRAY_RANDOM_BATCH)
                .map(|_| {
                    let da = DiskAddress((rng.next_u64() % total) as u16);
                    BatchRequest::new(da, SectorOp::READ_ALL, SectorBuf::zeroed())
                })
                .collect();
            let results = arr.do_batch(&mut batch);
            for r in &results {
                assert!(r.is_ok());
            }
            alto_disk::pool::recycle_results(results);
            trace.clear();
            arr.io_stats().ops - before
        },
    )
}

/// A full scavenger sweep over a populated K-pack array (range placement,
/// the file-system layout): phase 1 and phase 3 read every pack's sectors
/// in interleaved per-arm batches, so the K sweeps ride overlapped
/// timelines.
fn array_scavenge(cfg: Config, k: usize, min_wall_ms: u64) -> Measurement {
    let clock = SimClock::new();
    let trace = Trace::new();
    let mut arr = DriveArray::with_arms(
        k,
        Placement::Range,
        clock.clone(),
        trace.clone(),
        DiskModel::Diablo31,
    );
    apply_config(cfg, &trace);
    arr.set_threading_enabled(cfg.threads);
    let mut fs = FileSystem::format(arr).expect("format");
    let root = fs.root_dir();
    for i in 0..10 {
        let f = dir::create_named_file(&mut fs, root, &format!("a{i}.dat")).expect("create");
        fs.write_file(f, &vec![i as u8; 40 * 512]).expect("write");
    }
    measure(
        array_workload_name("scavenge", k),
        &clock,
        min_wall_ms,
        || {
            let before = fs.disk().io_stats().ops;
            let report = Scavenger::run(&mut fs).expect("scavenge");
            std::hint::black_box(&report);
            trace.clear();
            fs.disk().io_stats().ops - before
        },
    )
}

/// A flat workload: one measurement per configuration.
type FlatWorkload = fn(Config, u64) -> Measurement;
/// An array workload: one measurement per (configuration, arm count).
type ArrayWorkload = fn(Config, usize, u64) -> Measurement;

fn run_config(cfg: Config, min_wall_ms: u64, only: Option<&str>) -> Vec<Measurement> {
    let keep = |name: &str| only.is_none_or(|pat| name.contains(pat));
    let flat: [(&str, FlatWorkload); 9] = [
        ("seq_read", seq_read),
        ("seq_write", seq_write),
        ("stream_read", stream_read),
        ("stream_write", stream_write),
        ("random_batch", random_batch),
        ("scavenge", scavenge),
        ("campaign", campaign),
        ("dual_batch", dual_batch),
        ("array_mixed", array_mixed),
    ];
    let mut rows = Vec::new();
    for (name, f) in flat {
        if keep(name) {
            rows.push(f(cfg, min_wall_ms));
        }
    }
    let arrays: [(&str, ArrayWorkload); 3] = [
        ("seq", array_seq),
        ("random", array_random),
        ("scavenge", array_scavenge),
    ];
    for (shape, f) in arrays {
        for k in ARRAY_KS {
            if keep(array_workload_name(shape, k)) {
                rows.push(f(cfg, k, min_wall_ms));
            }
        }
    }
    rows
}

fn print_point(cfg: &Config, rows: &[Measurement]) {
    println!("\n== wall-clock throughput — {}", cfg.name);
    println!(
        "{:<14} {:>14} {:>14} {:>12} {:>12}",
        "workload", "sector-ops/s", "sim-s/wall-s", "allocs/op", "ops"
    );
    for m in rows {
        println!(
            "{:<14} {:>14.0} {:>14.1} {:>12.3} {:>12}",
            m.workload,
            m.ops_per_sec(),
            m.sim_per_wall(),
            m.allocs_per_op(),
            m.ops
        );
    }
}

fn json_point(cfg: &Config, rows: &[Measurement]) -> String {
    let mut out = format!("    {{\n      \"config\": \"{}\",\n", cfg.name);
    out.push_str(&format!(
        "      \"eager_trace\": {}, \"pooling\": {}, \"threads\": {}, \"views\": {},\n",
        cfg.eager_trace, cfg.pooling, cfg.threads, cfg.views
    ));
    out.push_str("      \"workloads\": {\n");
    let inner: Vec<String> = rows
        .iter()
        .map(|m| {
            format!(
                "        \"{}\": {{ \"sector_ops_per_sec\": {:.1}, \"sim_sec_per_wall_sec\": {:.2}, \"allocs_per_op\": {:.4}, \"ops\": {}, \"wall_ns\": {}, \"sim_ns\": {} }}",
                m.workload,
                m.ops_per_sec(),
                m.sim_per_wall(),
                m.allocs_per_op(),
                m.ops,
                m.wall_ns,
                m.sim_ns
            )
        })
        .collect();
    out.push_str(&inner.join(",\n"));
    out.push_str("\n      }\n    }");
    out
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut which = "both".to_string();
    let mut min_wall_ms = 300u64;
    let mut only: Option<String> = None;
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        match a.as_str() {
            "--json" => {
                json_path = Some(raw.next().unwrap_or_else(|| "BENCH_wall.json".to_string()));
            }
            "--config" => {
                which = raw.next().unwrap_or_else(|| "both".to_string());
            }
            "--ms" => {
                min_wall_ms = raw
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(min_wall_ms);
            }
            "--only" => {
                only = raw.next();
            }
            other => {
                eprintln!("unknown argument {other}; usage: wall [--json PATH] [--config seed|optimized|both] [--ms N] [--only SUBSTR]");
                std::process::exit(2);
            }
        }
    }
    let configs: Vec<Config> = match which.as_str() {
        "seed" => vec![SEED],
        "optimized" => vec![OPTIMIZED],
        _ => vec![SEED, OPTIMIZED],
    };
    let mut measured: Vec<(Config, Vec<Measurement>)> = Vec::new();
    for cfg in &configs {
        // `--only SUBSTR` runs just the matching workloads — for quick A/B
        // sampling of one shape on a noisy host. Workloads are mutually
        // independent (each builds its own drive and file system), so
        // skipping the rest changes nothing about the ones measured.
        let rows = run_config(*cfg, min_wall_ms, only.as_deref());
        print_point(cfg, &rows);
        measured.push((*cfg, rows));
    }
    if let [(_, seed_rows), (_, opt_rows)] = measured.as_slice() {
        println!("\n== speedup ({} / {})", OPTIMIZED.name, SEED.name);
        for (s, o) in seed_rows.iter().zip(opt_rows) {
            println!(
                "{:<14} {:>7.2}x  ({:.0} -> {:.0} sector-ops/s)",
                s.workload,
                o.ops_per_sec() / s.ops_per_sec(),
                s.ops_per_sec(),
                o.ops_per_sec()
            );
        }
    }
    // Simulated-time K-scaling of the drive-array workloads, from the last
    // measured configuration: sim-ns per sector op, single-arm control
    // divided by the K-arm figure.
    if let Some((_, rows)) = measured.last() {
        let sim_per_op = |name: &str| {
            rows.iter()
                .find(|m| m.workload == name)
                .map(|m| m.sim_ns as f64 / m.ops.max(1) as f64)
        };
        println!("\n== drive-array simulated-time scaling (vs one arm)");
        for shape in ["seq", "random", "scavenge"] {
            let base = sim_per_op(array_workload_name(shape, 1)).unwrap_or(f64::NAN);
            let mut line = format!("array_{shape:<9}");
            for k in ARRAY_KS {
                let v = sim_per_op(array_workload_name(shape, k)).unwrap_or(f64::NAN);
                line.push_str(&format!("  k{k}: {:>5.2}x", base / v));
            }
            println!("{line}");
        }
    }
    let points: Vec<String> = measured
        .iter()
        .map(|(cfg, rows)| json_point(cfg, rows))
        .collect();
    if let Some(path) = json_path {
        let json = format!(
            "{{\n  \"bench\": \"wall\",\n  \"unit\": \"sector-ops per wall-clock second\",\n  \"points\": [\n{}\n  ]\n}}\n",
            points.join(",\n")
        );
        std::fs::write(&path, json).expect("write json");
        println!("\nwrote {path}");
    }
}
