//! `determinism` — the double-run determinism harness (CI gate).
//!
//! Runs every wall `array_*` workload shape plus a 1000-client server round
//! three times each — threaded, threaded again, unthreaded — and demands
//! bit-identical trace digests, data digests, and simulated elapsed time.
//! Exits nonzero on any divergence. Run with `ALTO_AUDIT=1` to keep the
//! shadow auditor armed while the digests are taken:
//!
//! ```text
//! ALTO_AUDIT=1 cargo run --release -p alto-bench --bin determinism
//! cargo run --release -p alto-bench --bin determinism -- --json
//! ```

use std::process::ExitCode;

use alto_bench::determinism::standard_suite;

const ARMS: usize = 4;
const CLIENTS: usize = 1000;

fn main() -> ExitCode {
    let json = std::env::args().any(|a| a == "--json");
    let audit = std::env::var("ALTO_AUDIT").is_ok_and(|v| v == "1");
    if !json {
        println!(
            "determinism: {ARMS}-arm arrays, {CLIENTS}-client fleet, audit {}",
            if audit { "armed" } else { "off" }
        );
    }
    let reports = standard_suite(ARMS, CLIENTS);
    let mut clean = true;
    if json {
        println!("{{");
        println!("  \"audit\": {audit},");
        println!("  \"workloads\": [");
        for (i, r) in reports.iter().enumerate() {
            let comma = if i + 1 < reports.len() { "," } else { "" };
            println!("{}{comma}", r.json());
            clean &= r.identical();
        }
        println!("  ]");
        println!("}}");
    } else {
        for r in &reports {
            println!("{}", r.describe());
            clean &= r.identical();
        }
    }
    if clean {
        if !json {
            println!(
                "determinism: all {} workloads bit-identical across 3 runs",
                reports.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("determinism: DIVERGENCE detected — see report above");
        ExitCode::FAILURE
    }
}
