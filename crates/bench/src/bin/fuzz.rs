//! Hostile-pack fuzz sweep: structure-aware image mutation against the
//! full recovery stack (ROADMAP 5a; the harness lives in
//! `alto_fs::hostile`).
//!
//! Each iteration derives a deterministic [`Case`] from the sweep seed —
//! a valid single-drive or K=4 array image plus a batch of structural
//! corruptions — and drives the Scavenger, directory walk, open-by-name,
//! `read_file`, the warm/cold hint paths, and `FsPageService` open/read
//! against it, asserting the recovery contract: no panic, no hang (a
//! simulated-time budget), §3.3-audit-clean repairs, fixed-point
//! re-scavenge, and byte-stable surviving files.
//!
//! ```text
//! cargo run -p alto-bench --release --bin fuzz -- --count 10000
//! cargo run -p alto-bench --release --bin fuzz -- --corpus crates/fs/tests/corpus
//! ```
//!
//! Failures are minimized (greedy drop-one over the edit list) and dumped
//! as corpus-format case files into `--out` (default `fuzz-failures/`),
//! ready to be checked into `crates/fs/tests/corpus/`.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use alto_disk::Disk;
use alto_fs::file::{unpack_bytes, PAGE_BYTES};
use alto_fs::hostile::{self, Case, Survivor};
use alto_fs::FileSystem;
use alto_net::server::{PageRequest, PageStore};
use alto_os::FsPageService;

thread_local! {
    /// The last panic's message + location, captured by our quiet hook.
    static LAST_PANIC: RefCell<Option<String>> = const { RefCell::new(None) };
}

fn install_quiet_panic_hook() {
    panic::set_hook(Box::new(|info| {
        let msg = if let Some(s) = info.payload().downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = info.payload().downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        let at = info
            .location()
            .map_or(String::new(), |l| format!(" at {}:{}", l.file(), l.line()));
        LAST_PANIC.with(|p| *p.borrow_mut() = Some(format!("panic: {msg}{at}")));
    }));
}

/// The `FsPageService` consistency check: every unambiguous root-level
/// survivor must open by name and serve exactly the bytes `read_file`
/// returned — cold (guessed hints) and then warm (learned hints).
fn service_check<D: Disk>(fs: &mut FileSystem<D>, survivors: &[Survivor]) -> Result<(), String> {
    // Open-by-name is case-insensitive and picks the first match, so a
    // hostile directory holding several entries with the same folded name
    // is inherently ambiguous: skip those.
    let mut counts: HashMap<String, usize> = HashMap::new();
    for s in survivors.iter().filter(|s| s.in_root) {
        *counts.entry(s.path.to_ascii_lowercase()).or_default() += 1;
    }
    let mut service = FsPageService::new(fs);
    for s in survivors.iter().filter(|s| s.in_root) {
        if s.file.is_directory() || counts[&s.path.to_ascii_lowercase()] > 1 {
            continue;
        }
        let Some(want) = &s.bytes else { continue };
        let info = service
            .open(&s.path)
            .map_err(|status| format!("service open of {:?} failed: status {status}", s.path))?;
        if info.last_len as usize > PAGE_BYTES {
            return Err(format!(
                "service open of {:?} reports last_len {} > a page",
                s.path, info.last_len
            ));
        }
        let served_len = (info.pages as usize - 1) * PAGE_BYTES + info.last_len as usize;
        if served_len != want.len() {
            return Err(format!(
                "service length of {:?} is {served_len}, read_file returned {}",
                s.path,
                want.len()
            ));
        }
        let reqs: Vec<PageRequest> = (1..=info.pages)
            .map(|page| PageRequest {
                open_id: info.open_id,
                page,
                tag: page as u32,
            })
            .collect();
        // Cold pass (guessed hints), then warm pass (learned hints): both
        // must deliver every page with the same bytes.
        for pass in ["cold", "warm"] {
            let mut got: Vec<Option<[u8; PAGE_BYTES]>> = vec![None; info.pages as usize];
            let mut failed = Vec::new();
            service.serve(&reqs, &mut failed, |tag, data| {
                got[tag as usize - 1] = Some(unpack_bytes(data));
            });
            if let Some((tag, status)) = failed.first() {
                return Err(format!(
                    "{pass} serve of {:?} failed: page {tag} status {status}",
                    s.path
                ));
            }
            let mut assembled = Vec::with_capacity(served_len);
            for (i, page) in got.iter().enumerate() {
                let Some(bytes) = page else {
                    return Err(format!(
                        "{pass} serve of {:?} never delivered page {}",
                        s.path,
                        i + 1
                    ));
                };
                let take = if i + 1 == info.pages as usize {
                    info.last_len as usize
                } else {
                    PAGE_BYTES
                };
                assembled.extend_from_slice(&bytes[..take]);
            }
            if assembled != *want {
                return Err(format!(
                    "{pass} serve of {:?} returned different bytes than read_file",
                    s.path
                ));
            }
        }
    }
    Ok(())
}

/// Runs one case with panics caught; returns the failure description.
fn run_caught(case: &Case) -> Result<(), String> {
    LAST_PANIC.with(|p| *p.borrow_mut() = None);
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        hostile::run_case_with(case, service_check, service_check)
    }));
    match outcome {
        Ok(Ok(_)) => Ok(()),
        Ok(Err(e)) => Err(e),
        Err(_) => Err(LAST_PANIC
            .with(|p| p.borrow_mut().take())
            .unwrap_or_else(|| "panic: unknown".to_string())),
    }
}

/// Greedy drop-one minimization: repeatedly remove any single edit whose
/// removal keeps the case failing (any failure counts — the goal is the
/// smallest crasher, not a byte-identical message).
fn minimize(case: &Case, budget: &mut u32) -> Case {
    let mut best = case.clone();
    let mut improved = true;
    while improved && *budget > 0 {
        improved = false;
        for i in 0..best.edits.len() {
            if *budget == 0 {
                break;
            }
            let mut candidate = best.clone();
            candidate.edits.remove(i);
            *budget -= 1;
            if run_caught(&candidate).is_err() {
                best = candidate;
                improved = true;
                break;
            }
        }
    }
    best
}

struct Failure {
    seed: u64,
    minimized_error: String,
    file: PathBuf,
}

fn write_failure(out_dir: &Path, seed: u64, case: &Case, error: &str, min_error: &str) -> PathBuf {
    let _ = std::fs::create_dir_all(out_dir);
    let path = out_dir.join(format!("seed-{seed}.case"));
    let mut text = String::new();
    text.push_str(&format!("# sweep seed {seed}\n"));
    for line in error.lines() {
        text.push_str(&format!("# fails: {line}\n"));
    }
    if min_error != error {
        for line in min_error.lines() {
            text.push_str(&format!("# minimized fails: {line}\n"));
        }
    }
    text.push_str(&case.to_text());
    if let Err(e) = std::fs::write(&path, text) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    path
}

/// A rough class signature for deduplicating failures in the report: the
/// failure text with digits and addresses collapsed.
fn signature(error: &str) -> String {
    let first = error.lines().next().unwrap_or("");
    first
        .chars()
        .map(|c| if c.is_ascii_digit() { '#' } else { c })
        .collect()
}

fn replay_corpus(dir: &Path) -> Result<u32, String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read corpus dir {}: {e}", dir.display()))?
        .filter_map(|r| r.ok().map(|d| d.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    entries.sort();
    let mut failures = 0u32;
    for path in &entries {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let case =
            Case::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
        match run_caught(&case) {
            Ok(()) => println!("corpus {} .. ok", path.display()),
            Err(e) => {
                failures += 1;
                println!("corpus {} .. FAILED\n    {e}", path.display());
            }
        }
    }
    println!("corpus: {} cases, {} failures", entries.len(), failures);
    Ok(failures)
}

fn main() -> ExitCode {
    let mut count: u64 = 10_000;
    let mut seed: u64 = 0xA170_5EED;
    let mut corpus: Vec<PathBuf> = Vec::new();
    let mut out_dir = PathBuf::from("fuzz-failures");
    let mut json_path: Option<PathBuf> = None;
    let mut do_minimize = true;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match arg.as_str() {
            "--count" => count = value("--count").parse().expect("bad --count"),
            "--seed" => seed = value("--seed").parse().expect("bad --seed"),
            "--corpus" => corpus.push(PathBuf::from(value("--corpus"))),
            "--out" => out_dir = PathBuf::from(value("--out")),
            "--json" => json_path = Some(PathBuf::from(value("--json"))),
            "--no-minimize" => do_minimize = false,
            other => {
                eprintln!(
                    "unknown argument {other}\nusage: fuzz [--count N] [--seed S] \
                     [--corpus DIR]... [--out DIR] [--json FILE] [--no-minimize]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    install_quiet_panic_hook();
    let start = Instant::now();

    // Corpus replay mode: no sweep, exercise every checked-in case.
    if !corpus.is_empty() {
        let mut failures = 0u32;
        for dir in &corpus {
            match replay_corpus(dir) {
                Ok(n) => failures += n,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return if failures == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let mut failures: Vec<Failure> = Vec::new();
    let mut seen_signatures: HashMap<String, u32> = HashMap::new();
    for i in 0..count {
        let case_seed = seed.wrapping_add(i);
        let case = match hostile::random_case(case_seed) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("seed {case_seed}: case derivation failed: {e}");
                failures.push(Failure {
                    seed: case_seed,
                    minimized_error: e,
                    file: PathBuf::new(),
                });
                continue;
            }
        };
        if let Err(error) = run_caught(&case) {
            let sig = signature(&error);
            let repeats = seen_signatures.entry(sig).or_insert(0);
            *repeats += 1;
            // Minimize and dump the first few of each failure class; count
            // the rest.
            let (min_case, min_error) = if do_minimize && *repeats <= 3 {
                let mut budget = 200u32;
                let m = minimize(&case, &mut budget);
                let me = run_caught(&m).err().unwrap_or_else(|| error.clone());
                (m, me)
            } else {
                (case.clone(), error.clone())
            };
            let file = if *repeats <= 3 {
                write_failure(&out_dir, case_seed, &min_case, &error, &min_error)
            } else {
                PathBuf::new()
            };
            eprintln!(
                "seed {case_seed} ({:?}, {} edits): {error}",
                case.base,
                case.edits.len()
            );
            failures.push(Failure {
                seed: case_seed,
                minimized_error: min_error,
                file,
            });
        }
        if (i + 1) % 1000 == 0 {
            println!(
                "{}/{count} mutants, {} failures, {:.1}s",
                i + 1,
                failures.len(),
                start.elapsed().as_secs_f64()
            );
        }
    }

    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "sweep: {count} mutants from seed {seed:#x}, {} failures, {elapsed:.1}s",
        failures.len()
    );
    for (sig, n) in &seen_signatures {
        println!("  {n:5}x {sig}");
    }

    if let Some(path) = json_path {
        let mut json = String::from("{\n");
        json.push_str(&format!("  \"count\": {count},\n"));
        json.push_str(&format!("  \"seed\": {seed},\n"));
        json.push_str(&format!("  \"failures\": {},\n", failures.len()));
        json.push_str(&format!("  \"elapsed_secs\": {elapsed:.3},\n"));
        json.push_str("  \"failing_seeds\": [");
        let seeds: Vec<String> = failures.iter().map(|f| f.seed.to_string()).collect();
        json.push_str(&seeds.join(", "));
        json.push_str("],\n  \"classes\": [\n");
        let classes: Vec<String> = seen_signatures
            .iter()
            .map(|(sig, n)| format!("    {{\"count\": {n}, \"signature\": {sig:?}}}"))
            .collect();
        json.push_str(&classes.join(",\n"));
        json.push_str("\n  ]\n}\n");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
    // Keep the detailed failure list greppable in the log.
    for f in &failures {
        if !f.file.as_os_str().is_empty() {
            println!(
                "failing seed {} -> {} ({})",
                f.seed,
                f.file.display(),
                f.minimized_error.lines().next().unwrap_or("")
            );
        }
    }

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
