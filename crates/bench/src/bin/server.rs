//! Page-server load harness: thousands of scripted diskless clients
//! against one server (§5.2 / §4).
//!
//! Drives K clients × an M-arm drive array through the full stack —
//! scripted clients retransmitting over the simulated ether, the
//! `PageServer` request loop, `FsPageService` address-sorted batching,
//! the zero-copy chained read path, pooled reply payloads — and reports
//! both simulated-time service rates and host (wall-clock) throughput:
//!
//! * served page requests per **simulated** second — the §4 service-rate
//!   story: cross-client batching vs one-rotation-per-request naive
//!   service (`--config naive` flips `set_batching_enabled(false)`);
//! * served page requests per **wall** second and allocations per request
//!   — the simulator-cost story (pooled payloads, zero-copy views);
//! * p50/p95/p99 reply latency in simulated time, first send → reply.
//!
//! Run with:
//!
//! ```text
//! cargo run -p alto-bench --release --bin server -- --json BENCH_server.json
//! ```
//!
//! The default emits three points: batched and naive at 1,000 clients
//! (the ablation pair), plus batched at 5,000 clients (the scale point).
//! `--clients N` measures the requested configs at one size instead.

use std::time::Instant;

use alto_disk::{DiskModel, DriveArray, Placement};
use alto_fs::{dir, FileSystem};
use alto_net::server::PAGE_SERVICE_SOCKET;
use alto_net::{ClientConfig, ClientFleet, Ether, PageServer};
use alto_os::FsPageService;
use alto_sim::{SimClock, SimTime, Trace};

// Same counting allocator as the wall bench: allocs/request needs a real
// counter. Delegates every call to `System` unchanged.
#[allow(unsafe_code)]
mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub struct Counting;

    pub fn allocs() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }

    // SAFETY: every method forwards its arguments unchanged to `System`,
    // which upholds the `GlobalAlloc` contract; the counter bump has no
    // effect on the returned memory.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }
    }
}

#[global_allocator]
static ALLOC: alloc_count::Counting = alloc_count::Counting;

/// Distinct files on the server's disk, shared round-robin by the fleet.
const FILES: usize = 32;
/// Data pages per file — every client's script reads all of them.
const PAGES: u16 = 64;

struct Point {
    config: &'static str,
    clients: usize,
    drives: usize,
    served: u64,
    sim_ns: u64,
    wall_ns: u128,
    allocs: u64,
    retransmits: u64,
    failed: u64,
    send_failures: u64,
    batches: u64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
}

impl Point {
    fn served_per_sim_sec(&self) -> f64 {
        self.served as f64 / (self.sim_ns as f64 / 1e9)
    }
    fn served_per_wall_sec(&self) -> f64 {
        self.served as f64 / (self.wall_ns as f64 / 1e9)
    }
    fn allocs_per_request(&self) -> f64 {
        self.allocs as f64 / self.served.max(1) as f64
    }
}

fn percentile(sorted: &[SimTime], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx].as_nanos()
}

/// One complete fleet run to completion. The payload/wire pools are
/// thread-local and survive across calls, so a warmup run at the same
/// size leaves them at steady-state capacity and the measured run's
/// allocation count reflects the hot path, not pool fill.
fn run(config: &'static str, clients: usize, drives: usize, batching: bool) -> Point {
    let clock = SimClock::new();
    let trace = Trace::new();
    trace.set_enabled(false);
    alto_disk::pool::set_enabled(true);
    let arr = DriveArray::with_arms(
        drives,
        Placement::Range,
        clock.clone(),
        trace.clone(),
        DiskModel::Trident,
    );
    let mut fs = FileSystem::format(arr).expect("format");
    let root = fs.root_dir();
    let names: Vec<String> = (0..FILES).map(|f| format!("load{f}.dat")).collect();
    let bytes = vec![0xB7u8; PAGES as usize * 512 - 64];
    for name in &names {
        let file = dir::create_named_file(&mut fs, root, name).expect("create");
        fs.write_file(file, &bytes).expect("write");
    }

    let mut ether = Ether::new(clock.clone(), trace);
    ether.attach(1).expect("server host");
    let mut server = PageServer::new(1);
    server.set_batching_enabled(batching);
    let cfg = ClientConfig::new(1, PAGE_SERVICE_SOCKET);
    let mut fleet =
        ClientFleet::new(&mut ether, cfg, clients, |i| names[i % FILES].clone()).expect("fleet");
    fleet.samples.reserve(clients * PAGES as usize);
    let mut service = FsPageService::new(&mut fs);

    let allocs0 = alloc_count::allocs();
    let sim0 = clock.now();
    let wall0 = Instant::now();
    while !fleet.all_done() {
        let a = fleet.tick(&mut ether).expect("fleet tick");
        let b = server.tick(&mut ether, &mut service).expect("server tick");
        if a + b == 0 {
            ether.idle_wait(SimTime::from_millis(1));
        }
    }
    let wall_ns = wall0.elapsed().as_nanos();
    let sim_ns = (clock.now() - sim0).as_nanos();
    let allocs = alloc_count::allocs() - allocs0;
    let stats = fleet.stats();
    let mut samples = std::mem::take(&mut fleet.samples);
    samples.sort();
    Point {
        config,
        clients,
        drives,
        served: server.stats.served,
        sim_ns,
        wall_ns,
        allocs,
        retransmits: stats.retransmits,
        failed: stats.failed,
        send_failures: server.stats.send_failures,
        batches: server.stats.batches,
        p50_ns: percentile(&samples, 0.50),
        p95_ns: percentile(&samples, 0.95),
        p99_ns: percentile(&samples, 0.99),
    }
}

fn print_point(p: &Point) {
    println!(
        "{:<8} {:>6} clients x {} drives: {:>9.1} served/sim-s  {:>10.0} served/wall-s  {:>7.3} allocs/req  p50 {:>7.1}ms  p95 {:>7.1}ms  p99 {:>7.1}ms  ({} served, {} batches, {} rexmit, {} failed, {} send drops)",
        p.config,
        p.clients,
        p.drives,
        p.served_per_sim_sec(),
        p.served_per_wall_sec(),
        p.allocs_per_request(),
        p.p50_ns as f64 / 1e6,
        p.p95_ns as f64 / 1e6,
        p.p99_ns as f64 / 1e6,
        p.served,
        p.batches,
        p.retransmits,
        p.failed,
        p.send_failures,
    );
}

fn json_point(p: &Point) -> String {
    format!(
        "    {{ \"config\": \"{}\", \"clients\": {}, \"drives\": {}, \"pages_per_client\": {}, \"served\": {}, \"batches\": {}, \"failed\": {}, \"retransmits\": {}, \"send_failures\": {}, \"sim_ns\": {}, \"wall_ns\": {}, \"allocs\": {}, \"served_per_sim_sec\": {:.2}, \"served_per_wall_sec\": {:.1}, \"allocs_per_request\": {:.4}, \"latency_ns\": {{ \"p50\": {}, \"p95\": {}, \"p99\": {} }} }}",
        p.config,
        p.clients,
        p.drives,
        PAGES,
        p.served,
        p.batches,
        p.failed,
        p.retransmits,
        p.send_failures,
        p.sim_ns,
        p.wall_ns,
        p.allocs,
        p.served_per_sim_sec(),
        p.served_per_wall_sec(),
        p.allocs_per_request(),
        p.p50_ns,
        p.p95_ns,
        p.p99_ns,
    )
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut which = "both".to_string();
    let mut clients: Option<usize> = None;
    let mut drives = 2usize;
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        match a.as_str() {
            "--json" => {
                json_path = Some(
                    raw.next()
                        .unwrap_or_else(|| "BENCH_server.json".to_string()),
                );
            }
            "--config" => {
                which = raw.next().unwrap_or_else(|| "both".to_string());
            }
            "--clients" => {
                clients = raw.next().and_then(|s| s.parse().ok());
            }
            "--drives" => {
                drives = raw.next().and_then(|s| s.parse().ok()).unwrap_or(drives);
            }
            other => {
                eprintln!("unknown argument {other}; usage: server [--json PATH] [--config batched|naive|both] [--clients N] [--drives M]");
                std::process::exit(2);
            }
        }
    }
    let batched = which != "naive";
    let naive = which != "batched";

    // The measured plan: at an explicit --clients size, the requested
    // configs there; by default the 1k ablation pair plus the 5k batched
    // scale point.
    let mut plan: Vec<(&'static str, usize, bool)> = Vec::new();
    match clients {
        Some(n) => {
            if batched {
                plan.push(("batched", n, true));
            }
            if naive {
                plan.push(("naive", n, false));
            }
        }
        None => {
            if batched {
                plan.push(("batched", 1000, true));
            }
            if naive {
                plan.push(("naive", 1000, false));
            }
            if batched {
                plan.push(("batched", 5000, true));
            }
        }
    }

    // Warmup at the largest planned size: grows the thread-local payload
    // pools (and every scratch vector) to steady state so the measured
    // points count hot-path allocations only.
    let warm = plan.iter().map(|&(_, n, _)| n).max().unwrap_or(0);
    if warm > 0 {
        let _ = run("warmup", warm, drives, true);
    }

    println!("== page-server load (files: {FILES}, pages/client: {PAGES})");
    let mut points = Vec::new();
    for (name, n, b) in plan {
        let p = run(name, n, drives, b);
        print_point(&p);
        assert_eq!(p.failed, 0, "clients failed under lossless load");
        assert_eq!(
            p.served as usize % n,
            0,
            "partial service: {} served across {} clients",
            p.served,
            n
        );
        points.push(p);
    }

    // The headline ratio when both 1k points are present.
    let find = |cfg: &str, n: usize| {
        points
            .iter()
            .find(|p| p.config == cfg && p.clients == n)
            .map(Point::served_per_sim_sec)
    };
    if let (Some(b), Some(nv)) = (find("batched", 1000), find("naive", 1000)) {
        println!(
            "\nbatched/naive served-per-sim-sec at 1k clients: {:.1}x",
            b / nv
        );
    }

    if let Some(path) = json_path {
        let rows: Vec<String> = points.iter().map(json_point).collect();
        let json = format!(
            "{{\n  \"bench\": \"server\",\n  \"unit\": \"served page requests per simulated second\",\n  \"points\": [\n{}\n  ]\n}}\n",
            rows.join(",\n")
        );
        std::fs::write(&path, json).expect("write json");
        println!("wrote {path}");
    }
}
