//! A minimal bench harness with no external dependencies.
//!
//! Every device in this repository charges its work to a deterministic
//! [`SimClock`], so the number a bench should report is *simulated* time —
//! it is exact, reproducible, and directly comparable to the paper's
//! wall-clock claims. Host time is reported alongside as a sanity check on
//! the simulator's own cost, but it is not the measurement.
//!
//! The benches are plain `fn main()` binaries (`harness = false`); run them
//! with `cargo bench --workspace` as before.

use std::time::Instant;

use alto_sim::{SimClock, SimTime};

/// One measured workload.
pub struct Row {
    /// Workload label.
    pub label: String,
    /// Iterations the closure ran.
    pub iters: u32,
    /// Simulated time per iteration.
    pub simulated: SimTime,
    /// Host microseconds per iteration (simulator cost, not the result).
    pub host_micros: u128,
}

/// Runs `f` `iters` times and returns the per-iteration simulated time.
pub fn measure<R>(clock: &SimClock, label: &str, iters: u32, mut f: impl FnMut() -> R) -> Row {
    assert!(iters > 0);
    let wall = Instant::now();
    let t0 = clock.now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let sim_total = clock.now() - t0;
    Row {
        label: label.to_string(),
        iters,
        simulated: SimTime::from_nanos(sim_total.as_nanos() / iters as u64),
        host_micros: wall.elapsed().as_micros() / iters as u128,
    }
}

/// Prints a table of measurements.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("\n== {title}");
    println!(
        "{:<36} {:>6} {:>16} {:>12}",
        "workload", "iters", "simulated/iter", "host µs/iter"
    );
    for r in rows {
        println!(
            "{:<36} {:>6} {:>16} {:>12}",
            r.label,
            r.iters,
            format!("{}", r.simulated),
            r.host_micros
        );
    }
}

/// Ratio of two simulated times (`a / b`), for speedup lines.
pub fn speedup(a: SimTime, b: SimTime) -> f64 {
    a.as_nanos() as f64 / b.as_nanos().max(1) as f64
}
