//! Shared workload builders for the experiments and benches.
//!
//! Every experiment (E1–E10, see `DESIGN.md`) builds its workload through
//! these helpers so the `experiments` binary and the benches measure
//! exactly the same code paths. [`harness`] is the dependency-free bench
//! harness: deterministic simulated time is the measurement.

#![forbid(unsafe_code)]

pub mod determinism;
pub mod harness;

use alto_disk::{DiskDrive, DiskModel};
use alto_fs::names::FileFullName;
use alto_fs::{dir, FileSystem};
use alto_sim::{SimClock, SplitMix64, Trace};

/// A freshly formatted file system on the given model.
pub fn fresh_fs(model: DiskModel) -> FileSystem<DiskDrive> {
    let clock = SimClock::new();
    let drive = DiskDrive::with_formatted_pack(clock, Trace::new(), model, 1);
    FileSystem::format(drive).expect("format")
}

/// Creates a file of `pages` data pages, written in one go (which lays it
/// out near-consecutively on a fresh disk).
pub fn consecutive_file(fs: &mut FileSystem<DiskDrive>, name: &str, pages: usize) -> FileFullName {
    let root = fs.root_dir();
    let f = dir::create_named_file(fs, root, name).expect("create");
    fs.write_file(f, &vec![0xA5u8; pages * 512]).expect("write");
    f
}

/// Builds a badly fragmented population: `files` files grown one page at a
/// time in shuffled round-robin order, so consecutive pages of one file
/// are roughly `files` sectors apart on the disk.
pub fn fragmented_fs(
    files: usize,
    pages_each: usize,
    seed: u64,
) -> (FileSystem<DiskDrive>, Vec<String>) {
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let root = fs.root_dir();
    let mut names = Vec::new();
    for i in 0..files {
        let name = format!("frag-{i:02}.dat");
        dir::create_named_file(&mut fs, root, &name).expect("create");
        names.push(name);
    }
    let mut rng = SplitMix64::new(seed);
    let mut sizes = vec![0usize; files];
    for _ in 0..pages_each {
        let mut order: Vec<usize> = (0..files).collect();
        rng.shuffle(&mut order);
        for f in order {
            sizes[f] += 1;
            let file = dir::lookup(&mut fs, root, &names[f]).unwrap().unwrap();
            fs.write_file(file, &vec![f as u8; sizes[f] * 512 - 1])
                .expect("grow");
        }
    }
    (fs, names)
}

/// Relocates every data page of `file` to a uniformly random free sector —
/// the worst-case scatter a disk can reach after months of editing. Links,
/// leader hints and the allocation map are kept consistent (this is the
/// inverse of the compacting scavenger).
pub fn scatter_file(fs: &mut FileSystem<DiskDrive>, file: FileFullName, seed: u64) {
    use alto_disk::DiskAddress;
    use alto_fs::names::PageName;

    // Collect the whole chain.
    let mut pages = Vec::new();
    let mut pn = file.leader_page();
    loop {
        let (label, data) = fs.read_page(pn).expect("read chain");
        pages.push((pn.page, pn.da, label, data));
        if label.next.is_nil() {
            break;
        }
        pn = PageName::new(file.fv, pn.page + 1, label.next);
    }
    // Free the data pages (the leader stays, so the file's full name holds).
    for (page, da, ..) in pages.iter().skip(1) {
        fs.free_page(PageName::new(file.fv, *page, *da))
            .expect("free");
    }
    // Pick random free homes for pages 1..n.
    let mut rng = SplitMix64::new(seed);
    let total = fs.descriptor().bitmap.len() as u64;
    let mut new_das: Vec<DiskAddress> = Vec::new();
    for _ in 1..pages.len() {
        loop {
            let cand = DiskAddress(rng.next_below(total) as u16);
            if !fs.descriptor().bitmap.is_busy(cand) && !new_das.contains(&cand) {
                new_das.push(cand);
                break;
            }
        }
    }
    // Re-create each page at its new home with the new links.
    for i in 1..pages.len() {
        let (page_no, _, mut label, data) = pages[i];
        label.prev = if i == 1 {
            file.leader_da
        } else {
            new_das[i - 2]
        };
        label.next = new_das.get(i).copied().unwrap_or(DiskAddress::NIL);
        fs.descriptor_mut().bitmap.set_busy(new_das[i - 1]);
        alto_fs::page::allocate_at(fs.disk_mut(), new_das[i - 1], label, &data)
            .expect("re-place page");
        let _ = page_no;
    }
    // Fix the leader's next link and hints.
    let (mut leader_label, leader_data) = fs.read_page(file.leader_page()).expect("leader");
    leader_label.next = new_das[0];
    alto_fs::page::rewrite_label(
        fs.disk_mut(),
        file.leader_page(),
        leader_label,
        &leader_data,
    )
    .expect("leader link");
    let mut leader = alto_fs::LeaderPage::decode(&leader_data);
    leader.last_page = pages.last().unwrap().0;
    leader.last_da = *new_das.last().unwrap();
    leader.maybe_consecutive = false;
    fs.write_page(file.leader_page(), &leader.encode())
        .expect("leader hints");
}

/// Fills roughly `percent` of the disk with files of mixed sizes.
pub fn filled_fs(percent: u32, seed: u64) -> FileSystem<DiskDrive> {
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let root = fs.root_dir();
    let total = fs.descriptor().bitmap.len();
    let target_busy = total * percent / 100;
    let mut rng = SplitMix64::new(seed);
    let mut i = 0;
    while total - fs.descriptor().bitmap.free_count() < target_busy {
        let pages = (rng.next_below(24) + 1) as usize;
        let name = format!("fill-{i:04}.dat");
        let f = dir::create_named_file(&mut fs, root, &name).expect("create");
        fs.write_file(f, &vec![(i % 251) as u8; pages * 512 - 7])
            .expect("write");
        i += 1;
    }
    fs
}

#[cfg(test)]
mod tests {
    use super::*;
    use alto_disk::DiskAddress;
    use alto_fs::names::PageName;

    #[test]
    fn fragmented_fs_really_scatters() {
        let (mut fs, names) = fragmented_fs(6, 4, 1);
        // Measure the average gap between consecutive pages of one file.
        let root = fs.root_dir();
        let f = dir::lookup(&mut fs, root, &names[0]).unwrap().unwrap();
        let (leader, _) = fs.read_page(f.leader_page()).unwrap();
        let mut da: DiskAddress = leader.next;
        let mut page = 1;
        let mut gaps = Vec::new();
        loop {
            let (label, _) = fs.read_page(PageName::new(f.fv, page, da)).unwrap();
            if label.next.is_nil() {
                break;
            }
            gaps.push((label.next.0 as i32 - da.0 as i32).unsigned_abs());
            da = label.next;
            page += 1;
        }
        let avg = gaps.iter().sum::<u32>() as f64 / gaps.len() as f64;
        assert!(avg > 3.0, "average gap {avg} too small to call fragmented");
    }

    #[test]
    fn filled_fs_hits_target() {
        let fs = filled_fs(30, 2);
        let total = fs.descriptor().bitmap.len();
        let busy = total - fs.descriptor().bitmap.free_count();
        let pct = busy * 100 / total;
        assert!((28..=40).contains(&pct), "fill landed at {pct}%");
    }

    #[test]
    fn consecutive_file_is_consecutive() {
        let mut fs = fresh_fs(DiskModel::Diablo31);
        let f = consecutive_file(&mut fs, "c.dat", 20);
        let leader = fs.read_leader(f).unwrap();
        assert!(leader.last_page == 20);
    }

    #[test]
    fn scatter_preserves_contents_and_scavenges_clean() {
        let mut fs = fresh_fs(DiskModel::Diablo31);
        let f = consecutive_file(&mut fs, "s.dat", 25);
        let before = fs.read_file(f).unwrap();
        scatter_file(&mut fs, f, 3);
        assert_eq!(fs.read_file(f).unwrap(), before);
        // The scattered layout is structurally perfect.
        let disk = fs.unmount().unwrap();
        let (mut fs, report) = alto_fs::Scavenger::rebuild(disk).unwrap();
        assert_eq!(report.links_repaired, 0);
        assert_eq!(report.orphans_adopted, 0);
        let root = fs.root_dir();
        let g = dir::lookup(&mut fs, root, "s.dat").unwrap().unwrap();
        assert_eq!(fs.read_file(g).unwrap(), before);
    }
}
