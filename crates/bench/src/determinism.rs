//! The double-run determinism harness.
//!
//! The simulator's core promise is that simulated time and every observable
//! it derives — trace streams, served bytes, scavenge verdicts — are a pure
//! function of the workload: bit-identical run to run, with host threading
//! on or off, with the shadow auditor armed or not. The static side of that
//! promise is `cargo xtask analyze` (no hash-order iteration, no stray
//! threads, no undisciplined clocks); this module is the runtime side.
//!
//! Each workload is executed **three times**: threaded, threaded again, and
//! unthreaded. The repeat catches in-process nondeterminism (every
//! `HashMap` draws fresh hasher keys per instance, so hash-order leaks
//! diverge even within one process); the threads-on/off pair catches any
//! seam in the drive-array timeline merge. All three runs must produce the
//! same [`RunDigest`]: a fold of the full trace stream, a fold of every
//! data word the workload observed, and the final simulated elapsed time.

use alto_disk::{
    BatchRequest, Disk, DiskAddress, DiskModel, DriveArray, Placement, SectorBuf, SectorOp,
};
use alto_fs::{dir, FileSystem, Scavenger};
use alto_net::{ClientConfig, ClientFleet, Ether, PageServer, PAGE_SERVICE_SOCKET};
use alto_os::FsPageService;
use alto_sim::{SimClock, SimTime, SplitMix64, Trace};

/// FNV-1a over everything a run observes.
#[derive(Debug, Clone, Copy)]
pub struct Fold(u64);

impl Default for Fold {
    fn default() -> Self {
        Fold(0xcbf2_9ce4_8422_2325)
    }
}

impl Fold {
    pub fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
    }

    pub fn word(&mut self, w: u16) {
        self.bytes(&w.to_le_bytes());
    }

    pub fn words(&mut self, ws: &[u16]) {
        for &w in ws {
            self.word(w);
        }
    }

    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    pub fn value(&self) -> u64 {
        self.0
    }
}

/// The observables one run produces. Two runs of the same workload must
/// compare equal on every field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunDigest {
    /// Fold of every trace event (time, tag, detail), in stream order.
    pub trace: u64,
    /// Fold of every data word the workload observed (sector reads, served
    /// pages, scavenge verdicts).
    pub data: u64,
    /// Simulated time elapsed over the run, in nanoseconds.
    pub sim_ns: u64,
}

fn digest_trace(trace: &Trace) -> u64 {
    let mut f = Fold::default();
    for ev in trace.events() {
        f.u64(ev.at.as_nanos());
        f.bytes(ev.tag.as_bytes());
        f.bytes(ev.detail.as_bytes());
    }
    f.value()
}

/// One workload's three runs.
#[derive(Debug)]
pub struct WorkloadReport {
    pub name: &'static str,
    pub threaded: RunDigest,
    pub threaded_again: RunDigest,
    pub unthreaded: RunDigest,
}

impl WorkloadReport {
    pub fn identical(&self) -> bool {
        self.threaded == self.threaded_again && self.threaded == self.unthreaded
    }

    /// A compact one-line summary, flagging the first divergence if any.
    pub fn describe(&self) -> String {
        if self.identical() {
            format!(
                "{:<16} ok  trace {:016x}  data {:016x}  sim {} ns",
                self.name, self.threaded.trace, self.threaded.data, self.threaded.sim_ns
            )
        } else {
            format!(
                "{:<16} DIVERGED  threaded {:?}  repeat {:?}  unthreaded {:?}",
                self.name, self.threaded, self.threaded_again, self.unthreaded
            )
        }
    }

    pub fn json(&self) -> String {
        format!(
            "    {{ \"workload\": \"{}\", \"identical\": {}, \"trace\": \"{:016x}\", \"data\": \"{:016x}\", \"sim_ns\": {} }}",
            self.name,
            self.identical(),
            self.threaded.trace,
            self.threaded.data,
            self.threaded.sim_ns
        )
    }
}

/// Runs `f` threaded, threaded again, and unthreaded.
pub fn triple_run(name: &'static str, f: impl Fn(bool) -> RunDigest) -> WorkloadReport {
    WorkloadReport {
        name,
        threaded: f(true),
        threaded_again: f(true),
        unthreaded: f(false),
    }
}

/// Batch size for the array workloads: large enough that every arm's share
/// clears the drive array's per-arm threading threshold, so the threaded
/// runs really exercise the scoped-thread timeline merge.
const ARRAY_BATCH: u16 = 1024;
const ARRAY_ROUNDS: usize = 12;

fn array(k: usize, placement: Placement, threads: bool) -> (SimClock, Trace, DriveArray) {
    let clock = SimClock::new();
    let trace = Trace::new();
    trace.set_enabled(true);
    let mut arr = DriveArray::with_arms(
        k,
        placement,
        clock.clone(),
        trace.clone(),
        DiskModel::Diablo31,
    );
    arr.set_threading_enabled(threads);
    (clock, trace, arr)
}

/// Chained sequential reads across all K arms (hash placement interleaves
/// consecutive addresses onto every arm).
pub fn array_seq(k: usize, threads: bool) -> RunDigest {
    let (clock, trace, mut arr) = array(k, Placement::Hash, threads);
    let mut data = Fold::default();
    for _ in 0..ARRAY_ROUNDS {
        let mut batch: Vec<BatchRequest> = (0..ARRAY_BATCH)
            .map(|i| BatchRequest::new(DiskAddress(i), SectorOp::READ_ALL, SectorBuf::zeroed()))
            .collect();
        let results = arr.do_batch(&mut batch);
        for r in &results {
            assert!(r.is_ok(), "array_seq read failed: {r:?}");
        }
        alto_disk::pool::recycle_results(results);
        for req in &batch {
            data.words(&req.buf.data);
        }
    }
    RunDigest {
        trace: digest_trace(&trace),
        data: data.value(),
        sim_ns: clock.now().as_nanos(),
    }
}

/// Seeded-random read batches over the whole K-arm address space.
pub fn array_random(k: usize, threads: bool) -> RunDigest {
    let (clock, trace, mut arr) = array(k, Placement::Hash, threads);
    let total = arr.geometry().expect("geometry").sector_count() as u64;
    let mut rng = SplitMix64::new(0xDE7E);
    let mut data = Fold::default();
    for _ in 0..ARRAY_ROUNDS {
        let mut batch: Vec<BatchRequest> = (0..ARRAY_BATCH)
            .map(|_| {
                let da = DiskAddress((rng.next_u64() % total) as u16);
                BatchRequest::new(da, SectorOp::READ_ALL, SectorBuf::zeroed())
            })
            .collect();
        let results = arr.do_batch(&mut batch);
        for r in &results {
            assert!(r.is_ok(), "array_random read failed: {r:?}");
        }
        alto_disk::pool::recycle_results(results);
        for req in &batch {
            data.words(&req.buf.data);
        }
    }
    RunDigest {
        trace: digest_trace(&trace),
        data: data.value(),
        sim_ns: clock.now().as_nanos(),
    }
}

/// Populate a K-pack file system, then run a full scavenger rebuild —
/// phases 1 and 3 sweep every pack in interleaved per-arm batches.
pub fn array_scavenge(k: usize, threads: bool) -> RunDigest {
    let (clock, trace, mut arr) = array(k, Placement::Range, threads);
    arr.set_threading_enabled(threads);
    let mut fs = FileSystem::format(arr).expect("format");
    let root = fs.root_dir();
    for i in 0..12 {
        let f = dir::create_named_file(&mut fs, root, &format!("det-{i}.dat")).expect("create");
        fs.write_file(f, &vec![(i * 17 % 251) as u8; (i + 3) * 512 - 9])
            .expect("write");
    }
    let disk = fs.unmount().expect("unmount");
    let (mut fs, report) = Scavenger::rebuild(disk).expect("scavenge");
    let mut data = Fold::default();
    data.u64(u64::from(report.sectors_scanned));
    data.u64(u64::from(report.live_pages));
    data.u64(u64::from(report.free_pages));
    data.u64(u64::from(report.links_repaired));
    let root = fs.root_dir();
    for i in 0..12 {
        let f = dir::lookup(&mut fs, root, &format!("det-{i}.dat"))
            .expect("lookup")
            .expect("present");
        data.bytes(&fs.read_file(f).expect("read back"));
    }
    RunDigest {
        trace: digest_trace(&trace),
        data: data.value(),
        sim_ns: clock.now().as_nanos(),
    }
}

/// A full scripted-fleet server round: `clients` diskless clients open and
/// page in files served by a `PageServer` over a K-arm Trident store. The
/// data digest folds the fleet's order-independent served-word digest with
/// the server's counters, so a lost, reordered, or double-served page
/// diverges it.
pub fn server_round(clients: usize, drives: usize, threads: bool) -> RunDigest {
    const FILES: usize = 16;
    const PAGES: u16 = 8;
    let clock = SimClock::new();
    let trace = Trace::new();
    trace.set_enabled(true);
    let mut arr = DriveArray::with_arms(
        drives,
        Placement::Range,
        clock.clone(),
        trace.clone(),
        DiskModel::Trident,
    );
    arr.set_threading_enabled(threads);
    let mut fs = FileSystem::format(arr).expect("format");
    let root = fs.root_dir();
    let names: Vec<String> = (0..FILES).map(|f| format!("det{f}.dat")).collect();
    let bytes = vec![0x5Eu8; PAGES as usize * 512 - 64];
    for name in &names {
        let file = dir::create_named_file(&mut fs, root, name).expect("create");
        fs.write_file(file, &bytes).expect("write");
    }

    let mut ether = Ether::new(clock.clone(), trace.clone());
    ether.attach(1).expect("server host");
    let mut server = PageServer::new(1);
    let cfg = ClientConfig::new(1, PAGE_SERVICE_SOCKET);
    let mut fleet =
        ClientFleet::new(&mut ether, cfg, clients, |i| names[i % FILES].clone()).expect("fleet");
    let mut service = FsPageService::new(&mut fs);
    while !fleet.all_done() {
        let a = fleet.tick(&mut ether).expect("fleet tick");
        let b = server.tick(&mut ether, &mut service).expect("server tick");
        if a + b == 0 {
            ether.idle_wait(SimTime::from_millis(1));
        }
    }
    let mut data = Fold::default();
    data.u64(fleet.digest());
    data.u64(server.stats.served);
    data.u64(server.stats.errors);
    data.u64(server.stats.send_failures);
    RunDigest {
        trace: digest_trace(&trace),
        data: data.value(),
        sim_ns: clock.now().as_nanos(),
    }
}

/// The standard suite: every `array_*` wall workload shape plus a fleet
/// round, each triple-run. `clients` sizes the fleet (the CI harness uses
/// 1000; the in-tree regression test uses a smaller fleet to stay fast).
pub fn standard_suite(k: usize, clients: usize) -> Vec<WorkloadReport> {
    vec![
        triple_run("array_seq", |t| array_seq(k, t)),
        triple_run("array_random", |t| array_random(k, t)),
        triple_run("array_scavenge", |t| array_scavenge(k, t)),
        triple_run("server_round", |t| server_round(clients, k, t)),
    ]
}
