//! A small deterministic PRNG.
//!
//! Substrate crates (disk fault injection, file-system tests) need cheap
//! deterministic randomness without pulling `rand` into library code; this is
//! Steele & Vigna's SplitMix64, which is more than adequate for workload
//! shuffling and fault-site selection.

/// SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use alto_sim::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // the bounds used in this workspace.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform `u16` (handy for word-valued test data).
    pub fn next_u16(&mut self) -> u16 {
        (self.next_u64() >> 48) as u16
    }

    /// A random boolean that is true with probability `num/denom`.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.next_below(denom) < num
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(12345);
        let mut b = SplitMix64::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(99);
        for _ in 0..10_000 {
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[r.next_below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "next_below(0)")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(42);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(5);
        for _ in 0..100 {
            assert!(!r.chance(0, 10));
            assert!(r.chance(10, 10));
        }
    }
}
