//! Lightweight event tracing for simulated devices.
//!
//! Devices record coarse events (a seek, a label-check failure, a page
//! allocation retry) into a shared [`Trace`]. Tests use the trace to assert
//! on *mechanism*, not just outcome — e.g. that freeing a page cost exactly
//! one extra disk revolution, or that a hint miss fell back to a directory
//! lookup. Tracing is on by default and the buffer is bounded; wall-clock
//! benchmarks may gate it off with [`Trace::set_enabled`] so the hot paths
//! skip event formatting entirely (see [`Trace::record_with`]).

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::SimTime;

/// One traced event: a timestamp, a category tag, and a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time at which the event occurred.
    pub at: SimTime,
    /// Category tag, e.g. `"disk.seek"` or `"fs.hint_miss"`.
    pub tag: &'static str,
    /// Free-form detail for humans and tests.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.tag, self.detail)
    }
}

const DEFAULT_CAPACITY: usize = 64 * 1024;

/// A shared, bounded event log.
///
/// Clones share the same buffer (and the same enabled gate). When the buffer
/// fills, the oldest events are dropped (tests that care run on fresh traces,
/// and counters are never dropped). The handle is `Send`/`Sync`, so overlapped
/// device timelines may record from worker threads.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    shared: Arc<Shared>,
}

#[derive(Debug)]
struct Shared {
    inner: Mutex<Inner>,
    enabled: AtomicBool,
}

impl Default for Shared {
    fn default() -> Self {
        Shared {
            inner: Mutex::new(Inner::default()),
            enabled: AtomicBool::new(true),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Trace {
    /// Creates an empty trace (enabled).
    pub fn new() -> Self {
        Trace::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned trace buffer cannot corrupt simulation state (it holds
        // only diagnostics), so recording continues past a panicked peer.
        match self.shared.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// True when recording is on (the default).
    pub fn enabled(&self) -> bool {
        self.shared.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off for every clone of this trace.
    ///
    /// While off, [`Trace::record`] and [`Trace::record_with`] are no-ops
    /// that skip detail formatting — the wall-clock benchmark's ablation
    /// switch. Buffered events are kept.
    pub fn set_enabled(&self, on: bool) {
        self.shared.enabled.store(on, Ordering::Relaxed);
    }

    /// Records an event.
    pub fn record(&self, at: SimTime, tag: &'static str, detail: impl Into<String>) {
        if !self.enabled() {
            return;
        }
        self.push(at, tag, detail.into());
    }

    /// Records an event, building the detail string lazily.
    ///
    /// Hot paths use this so a disabled trace costs one relaxed atomic load
    /// — no `format!`, no allocation.
    pub fn record_with(&self, at: SimTime, tag: &'static str, detail: impl FnOnce() -> String) {
        if !self.enabled() {
            return;
        }
        self.push(at, tag, detail());
    }

    fn push(&self, at: SimTime, tag: &'static str, detail: String) {
        let mut inner = self.lock();
        if inner.events.len() >= DEFAULT_CAPACITY {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(TraceEvent { at, tag, detail });
    }

    /// Appends every event of `other` (oldest first) to this trace,
    /// draining `other`.
    ///
    /// A dual-drive adapter runs each unit's share of a batch on its own
    /// private trace and merges them back in unit order, so the shared log
    /// stays deterministic regardless of thread interleaving.
    pub fn absorb(&self, other: &Trace) {
        let mut moved = {
            let mut src = other.lock();
            src.dropped = 0;
            std::mem::take(&mut src.events)
        };
        let mut inner = self.lock();
        for ev in moved.drain(..) {
            if inner.events.len() >= DEFAULT_CAPACITY {
                inner.events.pop_front();
                inner.dropped += 1;
            }
            inner.events.push_back(ev);
        }
    }

    /// Number of recorded events with the given tag.
    pub fn count(&self, tag: &str) -> usize {
        self.lock().events.iter().filter(|e| e.tag == tag).count()
    }

    /// Total number of events currently buffered.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// True if no events have been recorded (and none dropped).
    pub fn is_empty(&self) -> bool {
        let inner = self.lock();
        inner.events.is_empty() && inner.dropped == 0
    }

    /// A snapshot of all buffered events (oldest first).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock().events.iter().cloned().collect()
    }

    /// Events matching `tag`, oldest first.
    pub fn events_tagged(&self, tag: &str) -> Vec<TraceEvent> {
        self.lock()
            .events
            .iter()
            .filter(|e| e.tag == tag)
            .cloned()
            .collect()
    }

    /// Discards all buffered events and resets the dropped counter.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.events.clear();
        inner.dropped = 0;
    }

    /// Number of events lost to the capacity bound since the last clear.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let t = Trace::new();
        assert!(t.is_empty());
        t.record(SimTime::from_millis(1), "disk.seek", "cyl 0 -> 5");
        t.record(SimTime::from_millis(2), "disk.seek", "cyl 5 -> 6");
        t.record(SimTime::from_millis(3), "disk.read", "sector 12");
        assert_eq!(t.count("disk.seek"), 2);
        assert_eq!(t.count("disk.read"), 1);
        assert_eq!(t.count("nope"), 0);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn clones_share_the_buffer() {
        let t = Trace::new();
        let t2 = t.clone();
        t2.record(SimTime::ZERO, "x", "from clone");
        assert_eq!(t.count("x"), 1);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::new();
        assert!(t.enabled());
        t.set_enabled(false);
        let t2 = t.clone();
        assert!(!t2.enabled());
        t.record(SimTime::ZERO, "a", "eager");
        t2.record_with(SimTime::ZERO, "b", || panic!("must not format"));
        assert!(t.is_empty());
        t.set_enabled(true);
        t.record_with(SimTime::ZERO, "c", || "lazy".to_string());
        assert_eq!(t.count("c"), 1);
    }

    #[test]
    fn absorb_moves_events_in_order() {
        let shared = Trace::new();
        shared.record(SimTime::from_micros(1), "s", "first");
        let unit = Trace::new();
        unit.record(SimTime::from_micros(2), "u", "second");
        unit.record(SimTime::from_micros(3), "u", "third");
        shared.absorb(&unit);
        assert!(unit.is_empty());
        let evs = shared.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].detail, "first");
        assert_eq!(evs[1].detail, "second");
        assert_eq!(evs[2].detail, "third");
    }

    #[test]
    fn trace_handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Trace>();
    }

    #[test]
    fn events_tagged_filters_in_order() {
        let t = Trace::new();
        t.record(SimTime::from_micros(1), "a", "first");
        t.record(SimTime::from_micros(2), "b", "middle");
        t.record(SimTime::from_micros(3), "a", "last");
        let evs = t.events_tagged("a");
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].detail, "first");
        assert_eq!(evs[1].detail, "last");
    }

    #[test]
    fn clear_resets() {
        let t = Trace::new();
        t.record(SimTime::ZERO, "a", "x");
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn display_includes_tag_and_detail() {
        let e = TraceEvent {
            at: SimTime::from_millis(40),
            tag: "disk.rev",
            detail: "extra revolution".into(),
        };
        let s = e.to_string();
        assert!(s.contains("disk.rev"));
        assert!(s.contains("extra revolution"));
    }

    #[test]
    fn capacity_bound_drops_oldest() {
        let t = Trace::new();
        for i in 0..(super::DEFAULT_CAPACITY as u64 + 10) {
            t.record(SimTime::from_nanos(i), "x", i.to_string());
        }
        assert_eq!(t.len(), super::DEFAULT_CAPACITY);
        assert_eq!(t.dropped(), 10);
        assert!(!t.is_empty());
        // The oldest surviving event is number 10.
        assert_eq!(t.events()[0].detail, "10");
        t.clear();
        assert_eq!(t.dropped(), 0);
    }
}
