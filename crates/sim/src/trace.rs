//! Lightweight event tracing for simulated devices.
//!
//! Devices record coarse events (a seek, a label-check failure, a page
//! allocation retry) into a shared [`Trace`]. Tests use the trace to assert
//! on *mechanism*, not just outcome — e.g. that freeing a page cost exactly
//! one extra disk revolution, or that a hint miss fell back to a directory
//! lookup. Tracing is cheap and always on; the buffer is bounded.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use crate::clock::SimTime;

/// One traced event: a timestamp, a category tag, and a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time at which the event occurred.
    pub at: SimTime,
    /// Category tag, e.g. `"disk.seek"` or `"fs.hint_miss"`.
    pub tag: &'static str,
    /// Free-form detail for humans and tests.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.tag, self.detail)
    }
}

const DEFAULT_CAPACITY: usize = 64 * 1024;

/// A shared, bounded event log.
///
/// Clones share the same buffer. When the buffer fills, the oldest events are
/// dropped (tests that care run on fresh traces, and counters are never
/// dropped).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    inner: Rc<RefCell<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Records an event.
    pub fn record(&self, at: SimTime, tag: &'static str, detail: impl Into<String>) {
        let mut inner = self.inner.borrow_mut();
        if inner.events.len() >= DEFAULT_CAPACITY {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(TraceEvent {
            at,
            tag,
            detail: detail.into(),
        });
    }

    /// Number of recorded events with the given tag.
    pub fn count(&self, tag: &str) -> usize {
        self.inner
            .borrow()
            .events
            .iter()
            .filter(|e| e.tag == tag)
            .count()
    }

    /// Total number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// True if no events have been recorded (and none dropped).
    pub fn is_empty(&self) -> bool {
        let inner = self.inner.borrow();
        inner.events.is_empty() && inner.dropped == 0
    }

    /// A snapshot of all buffered events (oldest first).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.borrow().events.iter().cloned().collect()
    }

    /// Events matching `tag`, oldest first.
    pub fn events_tagged(&self, tag: &str) -> Vec<TraceEvent> {
        self.inner
            .borrow()
            .events
            .iter()
            .filter(|e| e.tag == tag)
            .cloned()
            .collect()
    }

    /// Discards all buffered events and resets the dropped counter.
    pub fn clear(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.events.clear();
        inner.dropped = 0;
    }

    /// Number of events lost to the capacity bound since the last clear.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let t = Trace::new();
        assert!(t.is_empty());
        t.record(SimTime::from_millis(1), "disk.seek", "cyl 0 -> 5");
        t.record(SimTime::from_millis(2), "disk.seek", "cyl 5 -> 6");
        t.record(SimTime::from_millis(3), "disk.read", "sector 12");
        assert_eq!(t.count("disk.seek"), 2);
        assert_eq!(t.count("disk.read"), 1);
        assert_eq!(t.count("nope"), 0);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn clones_share_the_buffer() {
        let t = Trace::new();
        let t2 = t.clone();
        t2.record(SimTime::ZERO, "x", "from clone");
        assert_eq!(t.count("x"), 1);
    }

    #[test]
    fn events_tagged_filters_in_order() {
        let t = Trace::new();
        t.record(SimTime::from_micros(1), "a", "first");
        t.record(SimTime::from_micros(2), "b", "middle");
        t.record(SimTime::from_micros(3), "a", "last");
        let evs = t.events_tagged("a");
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].detail, "first");
        assert_eq!(evs[1].detail, "last");
    }

    #[test]
    fn clear_resets() {
        let t = Trace::new();
        t.record(SimTime::ZERO, "a", "x");
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn display_includes_tag_and_detail() {
        let e = TraceEvent {
            at: SimTime::from_millis(40),
            tag: "disk.rev",
            detail: "extra revolution".into(),
        };
        let s = e.to_string();
        assert!(s.contains("disk.rev"));
        assert!(s.contains("extra revolution"));
    }

    #[test]
    fn capacity_bound_drops_oldest() {
        let t = Trace::new();
        for i in 0..(super::DEFAULT_CAPACITY as u64 + 10) {
            t.record(SimTime::from_nanos(i), "x", i.to_string());
        }
        assert_eq!(t.len(), super::DEFAULT_CAPACITY);
        assert_eq!(t.dropped(), 10);
        assert!(!t.is_empty());
        // The oldest surviving event is number 10.
        assert_eq!(t.events()[0].detail, "10");
        t.clear();
        assert_eq!(t.dropped(), 0);
    }
}
