//! Simulated time.
//!
//! [`SimTime`] is a duration/instant measured in nanoseconds since the start
//! of the simulation. [`SimClock`] is a shared handle to the current
//! simulated instant; cloning a clock yields another handle to the *same*
//! clock, so a disk drive and a CPU constructed from clones of one clock
//! charge their costs to a single timeline.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point in (or span of) simulated time, in nanoseconds.
///
/// The same type serves as instant and duration, as with a bare integer
/// timestamp; 64 bits of nanoseconds covers ~584 years of simulated time,
/// which is ample for any experiment in this repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant / empty duration.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs a time from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Constructs a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Constructs a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// The value in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The value in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The value in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The value in seconds, as a float (for reports).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction; useful for "time remaining" computations.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Scales a duration by an integer factor.
    pub fn scaled(self, factor: u64) -> SimTime {
        SimTime(self.0 * factor)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3} s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3} ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3} µs", ns as f64 / 1e3)
        } else {
            write!(f, "{ns} ns")
        }
    }
}

/// A shared simulated clock.
///
/// All simulated devices hold a clone of the same `SimClock` and call
/// [`SimClock::advance`] as they consume time. Tests and benchmarks read the
/// clock before and after an operation to obtain its simulated cost. The
/// handle is `Send`/`Sync`, so overlapped device timelines (a dual drive's
/// two arms) may run on worker threads, each against its own private clock.
///
/// # Examples
///
/// ```
/// use alto_sim::{SimClock, SimTime};
///
/// let clock = SimClock::new();
/// let device_view = clock.clone(); // same timeline
/// device_view.advance(SimTime::from_millis(40));
/// assert_eq!(clock.now(), SimTime::from_millis(40));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a new clock at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        SimTime(self.now.load(Ordering::Relaxed))
    }

    /// Advances the clock by `dt`.
    pub fn advance(&self, dt: SimTime) {
        self.now.fetch_add(dt.0, Ordering::Relaxed);
    }

    /// Measures the simulated time consumed by `f`.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> (T, SimTime) {
        let start = self.now();
        let out = f();
        (out, self.now() - start)
    }

    /// Sets the clock to an absolute instant.
    ///
    /// This exists for devices that model *overlapped* internal timelines:
    /// a dual-drive adapter executes each unit's half of a batch from the
    /// same start instant and then sets the clock to the later finish, so
    /// the elapsed time is the maximum of the two units' times rather than
    /// their sum. It must only be used by a device while it has exclusive
    /// control of the timeline (a synchronous operation), so no other
    /// device observes an intermediate instant. Ordinary devices should
    /// only ever [`SimClock::advance`].
    pub fn set(&self, t: SimTime) {
        self.now.store(t.as_nanos(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_nanos(800).as_nanos(), 800);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!((a + b).as_millis(), 14);
        assert_eq!((a - b).as_millis(), 6);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(b.scaled(3).as_millis(), 12);
        let mut c = a;
        c += b;
        assert_eq!(c.as_millis(), 14);
    }

    #[test]
    fn clones_share_the_timeline() {
        let clock = SimClock::new();
        let other = clock.clone();
        other.advance(SimTime::from_micros(7));
        clock.advance(SimTime::from_micros(3));
        assert_eq!(clock.now().as_micros(), 10);
        assert_eq!(other.now().as_micros(), 10);
    }

    #[test]
    fn time_measures_elapsed() {
        let clock = SimClock::new();
        clock.advance(SimTime::from_secs(1));
        let (value, dt) = clock.time(|| {
            clock.advance(SimTime::from_millis(25));
            42
        });
        assert_eq!(value, 42);
        assert_eq!(dt, SimTime::from_millis(25));
    }

    #[test]
    fn set_rewinds_and_forwards_all_handles() {
        let clock = SimClock::new();
        let other = clock.clone();
        clock.advance(SimTime::from_millis(10));
        other.set(SimTime::from_millis(4));
        assert_eq!(clock.now().as_millis(), 4);
        other.set(SimTime::from_millis(25));
        assert_eq!(clock.now().as_millis(), 25);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12 ns");
        assert_eq!(SimTime::from_micros(12).to_string(), "12.000 µs");
        assert_eq!(SimTime::from_millis(12).to_string(), "12.000 ms");
        assert_eq!(SimTime::from_secs(12).to_string(), "12.000 s");
    }
}
