//! Simulation substrate for the Alto reproduction.
//!
//! Everything in this workspace that models hardware — the disk, the CPU, the
//! network — charges its costs to a shared [`SimClock`] rather than to host
//! wall-clock time. This makes every experiment deterministic and lets the
//! benchmark harness report numbers directly comparable to the paper's
//! (seek times, rotational latencies and instruction times are properties of
//! the *model*, not of the machine running the simulation).
//!
//! The crate also provides the simulated Alto main memory ([`Memory`]: 64K
//! 16-bit words), a small deterministic PRNG ([`SplitMix64`]) so substrate
//! crates need no external dependencies, and a lightweight event [`Trace`]
//! used by tests to assert on device behaviour (e.g. "this allocation cost
//! exactly one disk revolution").

#![forbid(unsafe_code)]

pub mod clock;
pub mod memory;
pub mod rng;
pub mod trace;

pub use clock::{SimClock, SimTime};
pub use memory::{MemError, Memory, MEMORY_WORDS};
pub use rng::SplitMix64;
pub use trace::{Trace, TraceEvent};
