//! Simulated Alto main memory: 64K words of 16 bits.
//!
//! The Alto had 64K words of 800 ns semiconductor memory and no virtual
//! memory hardware; addresses are 16-bit word addresses, so every `u16` is a
//! valid address. Block operations take `usize` lengths and are checked
//! against the end of the address space.

use std::fmt;

/// Number of 16-bit words in the simulated address space (64K).
pub const MEMORY_WORDS: usize = 1 << 16;

/// Errors from block memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// A block operation starting at `base` with length `len` would run past
    /// the 64K-word address space.
    OutOfRange {
        /// First word of the attempted block.
        base: u16,
        /// Length of the attempted block, in words.
        len: usize,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfRange { base, len } => write!(
                f,
                "memory block [{base:#06x} .. {base:#06x}+{len}) exceeds 64K words"
            ),
        }
    }
}

impl std::error::Error for MemError {}

/// The simulated 64K-word main memory.
///
/// Single-word accesses are infallible (every 16-bit address exists); block
/// accesses validate their range. The memory is heap-allocated (128 KiB) and
/// cheap to snapshot, which is exactly what `OutLoad` does.
#[derive(Clone)]
pub struct Memory {
    words: Box<[u16; MEMORY_WORDS]>,
}

impl Default for Memory {
    fn default() -> Self {
        Memory::new()
    }
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory")
            .field("words", &MEMORY_WORDS)
            .finish_non_exhaustive()
    }
}

impl Memory {
    /// Creates a zeroed memory.
    pub fn new() -> Self {
        Memory {
            words: vec![0u16; MEMORY_WORDS]
                .into_boxed_slice()
                .try_into()
                .expect("length is MEMORY_WORDS"),
        }
    }

    /// Reads the word at `addr`.
    #[inline]
    pub fn read(&self, addr: u16) -> u16 {
        self.words[addr as usize]
    }

    /// Writes `value` at `addr`.
    #[inline]
    pub fn write(&mut self, addr: u16, value: u16) {
        self.words[addr as usize] = value;
    }

    /// Reads `dst.len()` words starting at `base`.
    pub fn read_block(&self, base: u16, dst: &mut [u16]) -> Result<(), MemError> {
        let range = self.range(base, dst.len())?;
        dst.copy_from_slice(&self.words[range]);
        Ok(())
    }

    /// Writes `src` starting at `base`.
    pub fn write_block(&mut self, base: u16, src: &[u16]) -> Result<(), MemError> {
        let range = self.range(base, src.len())?;
        self.words[range].copy_from_slice(src);
        Ok(())
    }

    /// Fills `len` words starting at `base` with `value`.
    pub fn fill(&mut self, base: u16, len: usize, value: u16) -> Result<(), MemError> {
        let range = self.range(base, len)?;
        self.words[range].fill(value);
        Ok(())
    }

    /// A read-only view of `len` words starting at `base`.
    pub fn slice(&self, base: u16, len: usize) -> Result<&[u16], MemError> {
        let range = self.range(base, len)?;
        Ok(&self.words[range])
    }

    /// A mutable view of `len` words starting at `base`.
    pub fn slice_mut(&mut self, base: u16, len: usize) -> Result<&mut [u16], MemError> {
        let range = self.range(base, len)?;
        Ok(&mut self.words[range])
    }

    /// The entire memory as a word slice (used by snapshots).
    pub fn as_words(&self) -> &[u16] {
        &self.words[..]
    }

    /// Replaces the entire contents from a 64K-word image.
    ///
    /// # Panics
    ///
    /// Panics if `image` is not exactly [`MEMORY_WORDS`] long; machine-state
    /// files always carry full images.
    pub fn load_image(&mut self, image: &[u16]) {
        assert_eq!(image.len(), MEMORY_WORDS, "memory image must be 64K words");
        self.words.copy_from_slice(image);
    }

    fn range(&self, base: u16, len: usize) -> Result<std::ops::Range<usize>, MemError> {
        let start = base as usize;
        let end = start
            .checked_add(len)
            .filter(|&e| e <= MEMORY_WORDS)
            .ok_or(MemError::OutOfRange { base, len })?;
        Ok(start..end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_zeroed() {
        let m = Memory::new();
        assert_eq!(m.read(0), 0);
        assert_eq!(m.read(u16::MAX), 0);
    }

    #[test]
    fn single_word_read_write() {
        let mut m = Memory::new();
        m.write(0o177777, 0xBEEF);
        assert_eq!(m.read(0o177777), 0xBEEF);
        m.write(0, 1);
        assert_eq!(m.read(0), 1);
    }

    #[test]
    fn block_round_trip() {
        let mut m = Memory::new();
        let src = [1u16, 2, 3, 4, 5];
        m.write_block(100, &src).unwrap();
        let mut dst = [0u16; 5];
        m.read_block(100, &mut dst).unwrap();
        assert_eq!(dst, src);
    }

    #[test]
    fn block_at_end_of_memory_is_ok() {
        let mut m = Memory::new();
        let base = (MEMORY_WORDS - 4) as u16;
        m.write_block(base, &[9, 9, 9, 9]).unwrap();
        assert_eq!(m.read(u16::MAX), 9);
    }

    #[test]
    fn block_past_end_is_rejected() {
        let mut m = Memory::new();
        let base = (MEMORY_WORDS - 2) as u16;
        let err = m.write_block(base, &[1, 2, 3]).unwrap_err();
        assert_eq!(err, MemError::OutOfRange { base, len: 3 });
        // Nothing was written.
        assert_eq!(m.read(base), 0);
    }

    #[test]
    fn fill_and_slice() {
        let mut m = Memory::new();
        m.fill(10, 6, 0o52525).unwrap();
        assert_eq!(m.slice(10, 6).unwrap(), &[0o52525; 6]);
        assert_eq!(m.read(16), 0);
        m.slice_mut(12, 2).unwrap().fill(7);
        assert_eq!(
            m.slice(10, 6).unwrap(),
            &[0o52525, 0o52525, 7, 7, 0o52525, 0o52525]
        );
    }

    #[test]
    fn image_round_trip() {
        let mut m = Memory::new();
        m.write(42, 4242);
        let image: Vec<u16> = m.as_words().to_vec();
        let mut m2 = Memory::new();
        m2.load_image(&image);
        assert_eq!(m2.read(42), 4242);
    }

    #[test]
    fn memerror_display() {
        let e = MemError::OutOfRange {
            base: 0xfffe,
            len: 3,
        };
        assert!(e.to_string().contains("64K"));
    }
}
