//! The CPU: fetch/execute with Nova semantics and 800 ns memory cycles.

use alto_sim::{Memory, SimClock, SimTime, Trace};

use crate::display::Teletype;
use crate::errors::MachineError;
use crate::instr::{AluOp, CarryCtl, Index, Instr, MemFn, Shift, SkipTest};
use crate::keyboard::Keyboard;
use crate::traps;

/// One 800 ns memory cycle.
pub const MEMORY_CYCLE: SimTime = SimTime::from_nanos(800);

/// Memory locations with auto-increment indirection (contents incremented
/// before use when used as an indirect address).
const AUTO_INC: std::ops::RangeInclusive<u16> = 0o20..=0o27;
/// Memory locations with auto-decrement indirection.
const AUTO_DEC: std::ops::RangeInclusive<u16> = 0o30..=0o37;

/// Why execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The instruction completed; execution may continue.
    Running,
    /// A `TRAP` with an operating-system code was executed. The machine
    /// state is ready for the handler: the PC points after the trap.
    Trap {
        /// The 11-bit trap code (≥ [`traps::OS_BASE`]).
        code: u16,
        /// The accumulator named by the instruction.
        ac: u8,
    },
    /// An interrupt is pending and location 1 holds no interrupt vector:
    /// the system (Rust-side) interrupt service routine must run. State is
    /// unchanged; the handler must drain the interrupting device.
    Interrupt,
    /// A `TRAP HALT` was executed.
    Halted,
}

/// The simulated Alto: CPU state, memory, and the two standard devices.
#[derive(Debug)]
pub struct Machine {
    /// Main memory (64K words).
    pub mem: Memory,
    /// The four accumulators.
    pub ac: [u16; 4],
    /// Program counter.
    pub pc: u16,
    /// The carry bit.
    pub carry: bool,
    /// Interrupt-enable flag.
    pub int_enabled: bool,
    /// The keyboard device (interrupt-driven, §2).
    pub keyboard: Keyboard,
    /// The teletype-style display device.
    pub display: Teletype,
    clock: SimClock,
    trace: Trace,
    instructions: u64,
}

impl Machine {
    /// A fresh machine: zeroed memory and registers, PC at 0, interrupts
    /// disabled.
    pub fn new(clock: SimClock, trace: Trace) -> Machine {
        Machine {
            mem: Memory::new(),
            ac: [0; 4],
            pc: 0,
            carry: false,
            int_enabled: false,
            keyboard: Keyboard::new(),
            display: Teletype::new(),
            clock,
            trace,
            instructions: 0,
        }
    }

    /// The machine's clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The machine's trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Instructions executed since construction.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    fn charge(&mut self, cycles: u64) {
        // lint: allow(clock-discipline) — the CPU is a hardware model with the
        // same standing as the disk: every instruction charges its memory
        // cycles to the shared timeline
        self.clock.advance(MEMORY_CYCLE.scaled(cycles));
    }

    /// Resolves an effective address, charging indirection cycles and
    /// performing auto-increment/decrement.
    fn effective(&mut self, instr_pc: u16, indirect: bool, index: Index, disp: u8) -> u16 {
        let base = match index {
            Index::PageZero => disp as u16,
            Index::PcRelative => instr_pc.wrapping_add(disp as i8 as u16),
            Index::Ac2Relative => self.ac[2].wrapping_add(disp as i8 as u16),
            Index::Ac3Relative => self.ac[3].wrapping_add(disp as i8 as u16),
        };
        if !indirect {
            return base;
        }
        self.charge(1);
        if AUTO_INC.contains(&base) {
            let v = self.mem.read(base).wrapping_add(1);
            self.mem.write(base, v);
            self.charge(1);
            v
        } else if AUTO_DEC.contains(&base) {
            let v = self.mem.read(base).wrapping_sub(1);
            self.mem.write(base, v);
            self.charge(1);
            v
        } else {
            self.mem.read(base)
        }
    }

    /// Executes one instruction (or delivers one pending interrupt).
    pub fn step(&mut self) -> Result<Step, MachineError> {
        // Interrupt delivery between instructions.
        if self.int_enabled && self.keyboard.pending(self.clock.now()) {
            let vector = self.mem.read(1);
            if vector == 0 {
                // No VM interrupt vector: the system ISR (Rust) handles it.
                return Ok(Step::Interrupt);
            }
            // VM vector: save PC at location 0, jump, disable interrupts.
            self.mem.write(0, self.pc);
            self.pc = vector;
            self.int_enabled = false;
            self.charge(2);
            self.trace.record(
                self.clock.now(),
                "cpu.interrupt",
                format!("vector {vector:#o}"),
            );
            return Ok(Step::Running);
        }

        let instr_pc = self.pc;
        let word = self.mem.read(instr_pc);
        self.charge(1);
        self.pc = self.pc.wrapping_add(1);
        self.instructions += 1;

        match Instr::decode(word) {
            Instr::Mem {
                func,
                indirect,
                index,
                disp,
            } => {
                let e = self.effective(instr_pc, indirect, index, disp);
                match func {
                    MemFn::Jmp => self.pc = e,
                    MemFn::Jsr => {
                        self.ac[3] = self.pc;
                        self.pc = e;
                    }
                    MemFn::Isz => {
                        let v = self.mem.read(e).wrapping_add(1);
                        self.mem.write(e, v);
                        self.charge(2);
                        if v == 0 {
                            self.pc = self.pc.wrapping_add(1);
                        }
                    }
                    MemFn::Dsz => {
                        let v = self.mem.read(e).wrapping_sub(1);
                        self.mem.write(e, v);
                        self.charge(2);
                        if v == 0 {
                            self.pc = self.pc.wrapping_add(1);
                        }
                    }
                }
                Ok(Step::Running)
            }
            Instr::Lda {
                ac,
                indirect,
                index,
                disp,
            } => {
                let e = self.effective(instr_pc, indirect, index, disp);
                self.ac[ac as usize] = self.mem.read(e);
                self.charge(1);
                Ok(Step::Running)
            }
            Instr::Sta {
                ac,
                indirect,
                index,
                disp,
            } => {
                let e = self.effective(instr_pc, indirect, index, disp);
                self.mem.write(e, self.ac[ac as usize]);
                self.charge(1);
                Ok(Step::Running)
            }
            Instr::Trap { ac, code } => match code {
                traps::HALT => Ok(Step::Halted),
                traps::INTEN => {
                    self.int_enabled = true;
                    Ok(Step::Running)
                }
                traps::INTDS => {
                    self.int_enabled = false;
                    Ok(Step::Running)
                }
                traps::RETI => {
                    self.pc = self.mem.read(0);
                    self.int_enabled = true;
                    self.charge(1);
                    Ok(Step::Running)
                }
                traps::KBDGET => {
                    let now = self.clock.now();
                    self.ac[ac as usize] = self.keyboard.read_at(now).unwrap_or(0xFFFF);
                    self.charge(1);
                    Ok(Step::Running)
                }
                code if code >= traps::OS_BASE => Ok(Step::Trap { code, ac }),
                _ => Err(MachineError::IllegalInstruction { pc: instr_pc, word }),
            },
            Instr::Alu {
                src,
                dst,
                op,
                shift,
                carry,
                no_load,
                skip,
            } => {
                let s = self.ac[src as usize];
                let d = self.ac[dst as usize];
                let c_in = match carry {
                    CarryCtl::Leave => self.carry,
                    CarryCtl::Zero => false,
                    CarryCtl::One => true,
                    CarryCtl::Complement => !self.carry,
                };
                // Compute the 16-bit result and whether the operation
                // carries out (which complements the base carry).
                let (value, carry_out) = match op {
                    AluOp::Com => (!s, false),
                    AluOp::Neg => ((!s).wrapping_add(1), s == 0),
                    AluOp::Mov => (s, false),
                    AluOp::Inc => (s.wrapping_add(1), s == 0xFFFF),
                    AluOp::Adc => {
                        let sum = d as u32 + (!s) as u32;
                        ((sum & 0xFFFF) as u16, sum > 0xFFFF)
                    }
                    AluOp::Sub => {
                        let sum = d as u32 + (!s) as u32 + 1;
                        ((sum & 0xFFFF) as u16, sum > 0xFFFF)
                    }
                    AluOp::Add => {
                        let sum = d as u32 + s as u32;
                        ((sum & 0xFFFF) as u16, sum > 0xFFFF)
                    }
                    AluOp::And => (d & s, false),
                };
                let mut c = c_in ^ carry_out;
                let mut v = value;
                match shift {
                    Shift::None => {}
                    Shift::Left => {
                        let new_c = v & 0x8000 != 0;
                        v = (v << 1) | u16::from(c);
                        c = new_c;
                    }
                    Shift::Right => {
                        let new_c = v & 1 != 0;
                        v = (v >> 1) | (u16::from(c) << 15);
                        c = new_c;
                    }
                    Shift::Swap => v = v.rotate_left(8),
                }
                let do_skip = match skip {
                    SkipTest::Never => false,
                    SkipTest::Always => true,
                    SkipTest::CarryZero => !c,
                    SkipTest::CarryNonzero => c,
                    SkipTest::ResultZero => v == 0,
                    SkipTest::ResultNonzero => v != 0,
                    SkipTest::EitherZero => !c || v == 0,
                    SkipTest::BothNonzero => c && v != 0,
                };
                if !no_load {
                    self.ac[dst as usize] = v;
                    self.carry = c;
                }
                if do_skip {
                    self.pc = self.pc.wrapping_add(1);
                }
                Ok(Step::Running)
            }
        }
    }

    /// Runs until a trap, interrupt, or halt — or until `budget`
    /// instructions have executed (guarding against runaway programs).
    pub fn run(&mut self, budget: u64) -> Result<Step, MachineError> {
        for _ in 0..budget {
            match self.step()? {
                Step::Running => {}
                other => return Ok(other),
            }
        }
        Err(MachineError::BudgetExhausted)
    }

    /// Loads `code` at `base` and points the PC there.
    pub fn load_program(&mut self, base: u16, code: &[u16]) -> Result<(), MachineError> {
        self.mem
            .write_block(base, code)
            .map_err(|_| MachineError::BadImage("program does not fit in memory"))?;
        self.pc = base;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn machine() -> Machine {
        Machine::new(SimClock::new(), Trace::new())
    }

    fn run_asm(source: &str) -> Machine {
        let mut m = machine();
        let code = assemble(source).expect("assembly failed");
        m.load_program(0o400, &code.words).unwrap();
        match m.run(100_000).unwrap() {
            Step::Halted => m,
            other => panic!("program ended with {other:?}"),
        }
    }

    #[test]
    fn add_two_numbers() {
        let m = run_asm(
            "
            lda 0, a
            lda 1, b
            add 0, 1
            halt
a:          .word 2
b:          .word 3
            ",
        );
        assert_eq!(m.ac[1], 5);
    }

    #[test]
    fn loop_with_dsz_sums() {
        // Sum 1..=10 by decrementing a counter.
        let m = run_asm(
            "
            lda 0, ten      ; counter
            subz 1, 1       ; ac1 = 0 (accumulator)
loop:       add 0, 1        ; ac1 += ac0
            lda 2, one
            subz 2, 0       ; ac0 -= 1... via sub
            mov# 0, 0, szr  ; skip when ac0 == 0
            jmp loop
            halt
ten:        .word 10
one:        .word 1
            ",
        );
        assert_eq!(m.ac[1], 55);
    }

    #[test]
    fn jsr_saves_return_in_ac3() {
        let m = run_asm(
            "
            jsr sub
            halt
sub:        lda 0, k
            jmp 0,3         ; return
k:          .word 42
            ",
        );
        assert_eq!(m.ac[0], 42);
    }

    #[test]
    fn isz_skips_on_zero() {
        let m = run_asm(
            "
            isz v          ; v becomes 0 -> skip the jmp
            jmp bad
            lda 0, good
            halt
bad:        lda 0, badv
            halt
v:          .word 0xFFFF
good:       .word 1
badv:       .word 2
            ",
        );
        assert_eq!(m.ac[0], 1);
    }

    #[test]
    fn indirect_and_auto_increment() {
        let mut m = machine();
        let code = assemble(
            "
            lda 0, @0o20    ; auto-increment cell
            lda 1, @0o20
            halt
            ",
        )
        .unwrap();
        m.load_program(0o400, &code.words).unwrap();
        // Table at 0o1000; auto-inc cell points just before it.
        m.mem.write(0o20, 0o777);
        m.mem.write(0o1000, 111);
        m.mem.write(0o1001, 222);
        assert_eq!(m.run(100).unwrap(), Step::Halted);
        assert_eq!(m.ac[0], 111);
        assert_eq!(m.ac[1], 222);
        assert_eq!(m.mem.read(0o20), 0o1001);
    }

    #[test]
    fn auto_decrement() {
        let mut m = machine();
        let code = assemble("lda 0, @0o30\nhalt").unwrap();
        m.load_program(0o400, &code.words).unwrap();
        m.mem.write(0o30, 0o1001);
        m.mem.write(0o1000, 99);
        m.run(100).unwrap();
        assert_eq!(m.ac[0], 99);
        assert_eq!(m.mem.read(0o30), 0o1000);
    }

    #[test]
    fn carry_semantics_add() {
        // 0xFFFF + 1 carries out; SZC/SNC observe it.
        let m = run_asm(
            "
            lda 0, big
            lda 1, one
            addz 0, 1, snc  ; carry out -> skip
            jmp no
            lda 2, yes
            halt
no:         lda 2, nope
            halt
big:        .word 0xFFFF
one:        .word 1
yes:        .word 7
nope:       .word 8
            ",
        );
        assert_eq!(m.ac[1], 0);
        assert_eq!(m.ac[2], 7);
    }

    #[test]
    fn sub_sets_carry_when_no_borrow() {
        // SUB with Z carry: carry ends 1 iff dst >= src.
        let m = run_asm(
            "
            lda 0, small
            lda 1, bigv
            subz 0, 1, snc ; 10 - 3: no borrow -> carry 1 -> skip
            jmp bad
            halt
bad:        lda 3, marker
            halt
small:      .word 3
bigv:       .word 10
marker:     .word 1
            ",
        );
        assert_eq!(m.ac[1], 7);
        assert_eq!(m.ac[3], 0);
    }

    #[test]
    fn shifts_rotate_through_carry() {
        let mut m = machine();
        let code = assemble("movzl 0, 0\nhalt").unwrap();
        m.load_program(0o400, &code.words).unwrap();
        m.ac[0] = 0x8001;
        m.run(10).unwrap();
        // Z clears carry; left rotate: carry gets old bit 15 (1), bit 0
        // gets old carry (0).
        assert_eq!(m.ac[0], 0x0002);
        assert!(m.carry);
    }

    #[test]
    fn byte_swap() {
        let mut m = machine();
        let code = assemble("movs 0, 0\nhalt").unwrap();
        m.load_program(0o400, &code.words).unwrap();
        m.ac[0] = 0x12AB;
        m.run(10).unwrap();
        assert_eq!(m.ac[0], 0xAB12);
    }

    #[test]
    fn no_load_preserves_ac_but_skips() {
        let mut m = machine();
        let code = assemble(
            "
            sub# 0, 0, szr  ; result 0 -> skip, but ac0 unchanged
            halt
            lda 1, k
            halt
k:          .word 5
            ",
        )
        .unwrap();
        m.load_program(0o400, &code.words).unwrap();
        m.ac[0] = 1234;
        m.run(10).unwrap();
        assert_eq!(m.ac[0], 1234);
        assert_eq!(m.ac[1], 5);
    }

    #[test]
    fn os_trap_surfaces() {
        let mut m = machine();
        let code = assemble("trap 2, 12\nhalt").unwrap();
        m.load_program(0o400, &code.words).unwrap();
        assert_eq!(m.run(10).unwrap(), Step::Trap { code: 12, ac: 2 });
        // Resume after the trap.
        assert_eq!(m.run(10).unwrap(), Step::Halted);
    }

    #[test]
    fn reserved_trap_codes_are_illegal() {
        let mut m = machine();
        let code = assemble("trap 0, 5\nhalt").unwrap();
        m.load_program(0o400, &code.words).unwrap();
        assert!(matches!(
            m.run(10),
            Err(MachineError::IllegalInstruction { .. })
        ));
    }

    #[test]
    fn interrupt_via_vm_vector() {
        let mut m = machine();
        // Main program: enable interrupts, then spin. ISR: store a marker,
        // return.
        let code = assemble(
            "
            inten
spin:       jmp spin
            ",
        )
        .unwrap();
        let isr = assemble(
            "
            lda 0, mk
            sta 0, 0o100
            reti
mk:         .word 77
            ",
        )
        .unwrap();
        m.load_program(0o400, &code.words).unwrap();
        m.mem.write_block(0o600, &isr.words).unwrap();
        m.mem.write(1, 0o600); // interrupt vector
        m.keyboard.press_at(SimTime::ZERO, b'x');
        // Run: the interrupt fires immediately after INTEN. Stop right
        // after the ISR's RETI (marker stored and interrupts re-enabled;
        // the pending key would immediately re-deliver otherwise).
        for _ in 0..20 {
            m.step().unwrap();
            if m.mem.read(0o100) == 77 && m.int_enabled {
                break;
            }
        }
        assert_eq!(m.mem.read(0o100), 77);
        // After RETI we are back in the spin loop with interrupts enabled.
        assert!(m.int_enabled);
        // The keyboard still holds the character (the VM ISR did not read
        // it); a real ISR would. Drain it so the machine can progress.
        assert_eq!(m.keyboard.read(), Some(b'x' as u16));
    }

    #[test]
    fn interrupt_without_vector_surfaces_to_rust() {
        let mut m = machine();
        let code = assemble("inten\nspin: jmp spin").unwrap();
        m.load_program(0o400, &code.words).unwrap();
        m.keyboard.press_at(SimTime::ZERO, b'a');
        let step = m.run(1000).unwrap();
        assert_eq!(step, Step::Interrupt);
        // Handler drains the device; execution continues.
        assert_eq!(m.keyboard.read(), Some(b'a' as u16));
        assert!(matches!(m.run(10), Err(MachineError::BudgetExhausted)));
    }

    #[test]
    fn interrupts_disabled_by_default() {
        let mut m = machine();
        let code = assemble("spin: jmp spin").unwrap();
        m.load_program(0o400, &code.words).unwrap();
        m.keyboard.press_at(SimTime::ZERO, b'a');
        assert!(matches!(m.run(100), Err(MachineError::BudgetExhausted)));
    }

    #[test]
    fn instruction_timing_charges_memory_cycles() {
        let mut m = machine();
        let code = assemble("lda 0, k\nhalt\nk: .word 1").unwrap();
        m.load_program(0o400, &code.words).unwrap();
        let t0 = m.clock().now();
        m.run(10).unwrap();
        let dt = m.clock().now() - t0;
        // LDA: fetch + operand (2 cycles); HALT: fetch (1 cycle).
        assert_eq!(dt, MEMORY_CYCLE.scaled(3));
    }

    #[test]
    fn budget_guards_against_runaway() {
        let mut m = machine();
        let code = assemble("spin: jmp spin").unwrap();
        m.load_program(0o400, &code.words).unwrap();
        assert_eq!(m.run(50), Err(MachineError::BudgetExhausted));
        assert_eq!(m.instructions(), 50);
    }

    #[test]
    fn com_is_ones_complement_and_preserves_carry() {
        let mut m = machine();
        let code = assemble("movo 0, 0\ncom 0, 1\nhalt").unwrap(); // set carry, then COM
        m.load_program(0o400, &code.words).unwrap();
        m.ac[0] = 0x00FF;
        m.run(10).unwrap();
        // MOVO forced carry to 1; COM leaves it.
        assert_eq!(m.ac[1], 0xFF00);
        assert!(m.carry);
    }

    #[test]
    fn neg_carries_only_on_zero() {
        for (input, want, carry_toggled) in [
            (0u16, 0u16, true),
            (1, 0xFFFF, false),
            (0x8000, 0x8000, false),
        ] {
            let mut m = machine();
            let code = assemble("negz 0, 1\nhalt").unwrap();
            m.load_program(0o400, &code.words).unwrap();
            m.ac[0] = input;
            m.run(10).unwrap();
            assert_eq!(m.ac[1], want, "NEG {input:#x}");
            assert_eq!(m.carry, carry_toggled, "NEG {input:#x} carry");
        }
    }

    #[test]
    fn adc_adds_complement() {
        // ADC: dst + !src. With carry zeroed: 10 + !3 = 10 + 0xFFFC.
        let mut m = machine();
        let code = assemble("adcz 0, 1\nhalt").unwrap();
        m.load_program(0o400, &code.words).unwrap();
        m.ac[0] = 3;
        m.ac[1] = 10;
        m.run(10).unwrap();
        assert_eq!(m.ac[1], 10u16.wrapping_add(!3u16));
        assert!(m.carry, "10 + 0xFFFC carries out");
    }

    #[test]
    fn and_masks_without_carry() {
        let mut m = machine();
        let code = assemble("andz 0, 1\nhalt").unwrap();
        m.load_program(0o400, &code.words).unwrap();
        m.ac[0] = 0x0F0F;
        m.ac[1] = 0x1234;
        m.run(10).unwrap();
        assert_eq!(m.ac[1], 0x0204);
        assert!(!m.carry);
    }

    #[test]
    fn inc_wraps_and_carries() {
        let mut m = machine();
        let code = assemble("incz 0, 1\nhalt").unwrap();
        m.load_program(0o400, &code.words).unwrap();
        m.ac[0] = 0xFFFF;
        m.run(10).unwrap();
        assert_eq!(m.ac[1], 0);
        assert!(m.carry);
    }

    #[test]
    fn right_rotate_through_carry() {
        let mut m = machine();
        let code = assemble("movor 0, 0\nhalt").unwrap(); // carry=1, rotate right
        m.load_program(0o400, &code.words).unwrap();
        m.ac[0] = 0x0001;
        m.run(10).unwrap();
        // Carry (1) enters bit 15; old bit 0 (1) becomes the carry.
        assert_eq!(m.ac[0], 0x8000);
        assert!(m.carry);
    }

    #[test]
    fn skip_tests_sez_and_sbn() {
        // SEZ: skip if either carry or result is zero.
        let mut m = machine();
        let code =
            assemble("subz 0, 0, sez\njmp noskip\nlda 1, mk\nhalt\nnoskip: halt\nmk: .word 5")
                .unwrap();
        m.load_program(0o400, &code.words).unwrap();
        m.run(10).unwrap();
        assert_eq!(m.ac[1], 5, "SUBZ 0,0 gives zero result: SEZ skips");

        // SBN: skip only when both carry and result nonzero.
        let mut m = machine();
        let code =
            assemble("subz 0, 1, sbn\njmp noskip\nlda 2, mk\nhalt\nnoskip: halt\nmk: .word 7")
                .unwrap();
        m.load_program(0o400, &code.words).unwrap();
        m.ac[0] = 3;
        m.ac[1] = 10; // 10-3=7 nonzero, no borrow -> carry 1: both nonzero
        m.run(10).unwrap();
        assert_eq!(m.ac[2], 7, "SBN skips when both nonzero");
    }

    #[test]
    fn auto_increment_wraps_at_64k() {
        let mut m = machine();
        let code = assemble("lda 0, @0o20\nhalt").unwrap();
        m.load_program(0o400, &code.words).unwrap();
        m.mem.write(0o20, 0xFFFF); // increments to 0
        m.mem.write(0, 4242);
        m.run(10).unwrap();
        assert_eq!(m.ac[0], 4242);
        assert_eq!(m.mem.read(0o20), 0);
    }

    #[test]
    fn jsr_indirect_through_pointer_table() {
        // The §5.1 calling pattern: JSR @ptr where ptr holds the routine.
        let mut m = machine();
        let code = assemble(
            "
            jsr @vec
            halt
vec:        .word routine
routine:    lda 0, k
            jmp 0,3
k:          .word 99
            ",
        )
        .unwrap();
        m.load_program(0o400, &code.words).unwrap();
        m.run(20).unwrap();
        assert_eq!(m.ac[0], 99);
    }
}
