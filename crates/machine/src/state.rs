//! Machine-state snapshots: the substance of `OutLoad`/`InLoad` (§4.1).
//!
//! "These transfers of control are achieved by defining a convention for
//! restoring the entire state of the machine from a disk file." The state
//! is the full 64K-word memory image plus the processor registers; encoded
//! as words it is exactly what the OS writes to a state file. At the
//! Diablo 31's ≈76.8 K words/s streaming rate, the 64K-plus-change image
//! takes about a second to write or read — the paper's "requires about a
//! second to complete its operation".

use alto_sim::{Memory, MEMORY_WORDS};

use crate::cpu::Machine;
use crate::errors::MachineError;

/// Snapshot format magic word.
const MAGIC: u16 = 0xA570;
/// Snapshot format version.
const VERSION: u16 = 1;
/// Header words before the memory image.
pub const HEADER_WORDS: usize = 10;

/// A complete machine state: what `OutLoad` saves and `InLoad` restores.
#[derive(Clone)]
pub struct MachineState {
    /// Accumulators.
    pub ac: [u16; 4],
    /// Program counter.
    pub pc: u16,
    /// Carry bit.
    pub carry: bool,
    /// Interrupt-enable flag.
    pub int_enabled: bool,
    /// The full memory image.
    pub memory: Vec<u16>,
}

impl std::fmt::Debug for MachineState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MachineState")
            .field("ac", &self.ac)
            .field("pc", &self.pc)
            .field("carry", &self.carry)
            .field("int_enabled", &self.int_enabled)
            .finish_non_exhaustive()
    }
}

impl MachineState {
    /// Captures the machine's current state.
    pub fn capture(machine: &Machine) -> MachineState {
        MachineState {
            ac: machine.ac,
            pc: machine.pc,
            carry: machine.carry,
            int_enabled: machine.int_enabled,
            memory: machine.mem.as_words().to_vec(),
        }
    }

    /// Restores this state into the machine (registers and every memory
    /// word; devices are untouched — they belong to the hardware, not the
    /// state).
    pub fn restore(&self, machine: &mut Machine) {
        machine.ac = self.ac;
        machine.pc = self.pc;
        machine.carry = self.carry;
        machine.int_enabled = self.int_enabled;
        machine.mem.load_image(&self.memory);
    }

    /// Encodes the state as words (header + memory image).
    pub fn encode(&self) -> Vec<u16> {
        let mut w = Vec::with_capacity(HEADER_WORDS + MEMORY_WORDS);
        w.push(MAGIC);
        w.push(VERSION);
        w.extend_from_slice(&self.ac);
        w.push(self.pc);
        w.push(self.carry as u16);
        w.push(self.int_enabled as u16);
        w.push(0); // reserved
        debug_assert_eq!(w.len(), HEADER_WORDS);
        w.extend_from_slice(&self.memory);
        w
    }

    /// Decodes a state from words.
    pub fn decode(words: &[u16]) -> Result<MachineState, MachineError> {
        if words.len() != HEADER_WORDS + MEMORY_WORDS {
            return Err(MachineError::BadImage("state image has the wrong size"));
        }
        if words[0] != MAGIC {
            return Err(MachineError::BadImage("not a machine-state image"));
        }
        if words[1] != VERSION {
            return Err(MachineError::BadImage("unknown state-image version"));
        }
        Ok(MachineState {
            ac: [words[2], words[3], words[4], words[5]],
            pc: words[6],
            carry: words[7] != 0,
            int_enabled: words[8] != 0,
            memory: words[HEADER_WORDS..].to_vec(),
        })
    }

    /// A blank state (zeroed machine).
    pub fn blank() -> MachineState {
        MachineState {
            ac: [0; 4],
            pc: 0,
            carry: false,
            int_enabled: false,
            memory: Memory::new().as_words().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alto_sim::{SimClock, Trace};

    #[test]
    fn capture_restore_round_trip() {
        let mut m = Machine::new(SimClock::new(), Trace::new());
        m.ac = [1, 2, 3, 4];
        m.pc = 0o1234;
        m.carry = true;
        m.int_enabled = true;
        m.mem.write(0o5000, 0xBEEF);
        let state = MachineState::capture(&m);

        let mut m2 = Machine::new(SimClock::new(), Trace::new());
        state.restore(&mut m2);
        assert_eq!(m2.ac, [1, 2, 3, 4]);
        assert_eq!(m2.pc, 0o1234);
        assert!(m2.carry);
        assert!(m2.int_enabled);
        assert_eq!(m2.mem.read(0o5000), 0xBEEF);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut state = MachineState::blank();
        state.ac = [9, 8, 7, 6];
        state.pc = 42;
        state.carry = true;
        state.memory[12345] = 0xCAFE;
        let words = state.encode();
        assert_eq!(words.len(), HEADER_WORDS + MEMORY_WORDS);
        let back = MachineState::decode(&words).unwrap();
        assert_eq!(back.ac, state.ac);
        assert_eq!(back.pc, 42);
        assert!(back.carry);
        assert!(!back.int_enabled);
        assert_eq!(back.memory[12345], 0xCAFE);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(MachineState::decode(&[]).is_err());
        let mut words = MachineState::blank().encode();
        words[0] = 0;
        assert!(MachineState::decode(&words).is_err());
        let mut words = MachineState::blank().encode();
        words[1] = 99;
        assert!(MachineState::decode(&words).is_err());
        let mut words = MachineState::blank().encode();
        words.pop();
        assert!(MachineState::decode(&words).is_err());
    }

    #[test]
    fn resumed_state_continues_execution() {
        use crate::asm::assemble;
        // A program that counts in memory; snapshot mid-flight; restore
        // into a different machine; it finishes as if nothing happened.
        let mut m = Machine::new(SimClock::new(), Trace::new());
        let code = assemble(
            "
            lda 0, start
loop:       inc 0, 0
            sta 0, result
            lda 1, limit
            sub# 0, 1, szr
            jmp loop
            halt
start:      .word 0
limit:      .word 10
result:     .word 0
            ",
        )
        .unwrap();
        m.load_program(0o400, &code.words).unwrap();
        // Run a few instructions, then snapshot.
        for _ in 0..7 {
            m.step().unwrap();
        }
        let snapshot = MachineState::capture(&m);
        // The original machine would have finished; restore into a fresh
        // machine instead and finish there.
        let mut m2 = Machine::new(SimClock::new(), Trace::new());
        snapshot.restore(&mut m2);
        assert_eq!(m2.run(1000).unwrap(), crate::cpu::Step::Halted);
        let result = code.labels["result"];
        assert_eq!(m2.mem.read(result), 10);
    }
}
