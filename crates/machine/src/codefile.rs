//! Loadable code files with fixup tables (§5.1).
//!
//! "Code for the program is read from a disk stream and loaded into low
//! memory addresses. All references to operating system procedures are
//! bound, using a fixup table contained in the code file."
//!
//! Word format:
//!
//! ```text
//! word 0        magic 0xA1C0
//! word 1        version (1)
//! word 2        load base
//! word 3        entry address (absolute)
//! word 4        code length in words
//! word 5        fixup count
//! code words…
//! per fixup:    offset word, name length word, packed name bytes
//! ```

use crate::asm::Assembled;
use crate::errors::MachineError;

/// Code-file magic word.
const MAGIC: u16 = 0xA1C0;
/// Code-file format version.
const VERSION: u16 = 1;

/// One fixup: the word at `offset` must be patched with the address of the
/// operating-system procedure named `symbol`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fixup {
    /// Offset into the code (words).
    pub offset: u16,
    /// The external symbol name.
    pub symbol: String,
}

/// A loadable program: code plus the fixup table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeFile {
    /// Address the code expects to be loaded at.
    pub base: u16,
    /// Entry point (absolute).
    pub entry: u16,
    /// The code words.
    pub code: Vec<u16>,
    /// References to operating-system procedures.
    pub fixups: Vec<Fixup>,
}

impl CodeFile {
    /// Packages assembler output as a code file.
    pub fn from_assembled(out: &Assembled) -> CodeFile {
        CodeFile {
            base: out.base,
            entry: out.entry,
            code: out.words.clone(),
            fixups: out
                .fixups
                .iter()
                .map(|(offset, symbol)| Fixup {
                    offset: *offset,
                    symbol: symbol.clone(),
                })
                .collect(),
        }
    }

    /// Encodes to words (the representation stored in a disk file).
    pub fn encode(&self) -> Vec<u16> {
        let mut w = vec![
            MAGIC,
            VERSION,
            self.base,
            self.entry,
            self.code.len() as u16,
            self.fixups.len() as u16,
        ];
        w.extend_from_slice(&self.code);
        for fixup in &self.fixups {
            w.push(fixup.offset);
            let bytes = fixup.symbol.as_bytes();
            w.push(bytes.len() as u16);
            for chunk in bytes.chunks(2) {
                let hi = (chunk[0] as u16) << 8;
                let lo = chunk.get(1).map_or(0, |&b| b as u16);
                w.push(hi | lo);
            }
        }
        w
    }

    /// Decodes from words.
    pub fn decode(words: &[u16]) -> Result<CodeFile, MachineError> {
        let mut i = 0usize;
        let next = |n: &mut usize| -> Result<u16, MachineError> {
            let w = words
                .get(*n)
                .copied()
                .ok_or(MachineError::BadImage("code file truncated"))?;
            *n += 1;
            Ok(w)
        };
        if next(&mut i)? != MAGIC {
            return Err(MachineError::BadImage("not a code file"));
        }
        if next(&mut i)? != VERSION {
            return Err(MachineError::BadImage("unknown code-file version"));
        }
        let base = next(&mut i)?;
        let entry = next(&mut i)?;
        let code_len = next(&mut i)? as usize;
        let fixup_count = next(&mut i)? as usize;
        let mut code = Vec::with_capacity(code_len);
        for _ in 0..code_len {
            code.push(next(&mut i)?);
        }
        let mut fixups = Vec::with_capacity(fixup_count);
        for _ in 0..fixup_count {
            let offset = next(&mut i)?;
            if offset as usize >= code_len {
                return Err(MachineError::BadImage("fixup offset out of range"));
            }
            let len = next(&mut i)? as usize;
            if len > 64 {
                return Err(MachineError::BadImage("fixup symbol too long"));
            }
            let mut bytes = Vec::with_capacity(len);
            for k in 0..len {
                if k % 2 == 0 {
                    let w = next(&mut i)?;
                    bytes.push((w >> 8) as u8);
                    if k + 1 < len {
                        bytes.push(w as u8);
                    }
                }
            }
            let symbol = String::from_utf8(bytes)
                .map_err(|_| MachineError::BadImage("fixup symbol not UTF-8"))?;
            fixups.push(Fixup { offset, symbol });
        }
        Ok(CodeFile {
            base,
            entry,
            code,
            fixups,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn sample() -> CodeFile {
        let out = assemble(
            "
            jsr @gets
            jsr @puts
            halt
gets:       .fixup \"Gets\"
puts:       .fixup \"Puts\"
            ",
        )
        .unwrap();
        CodeFile::from_assembled(&out)
    }

    #[test]
    fn from_assembled_carries_fixups() {
        let cf = sample();
        assert_eq!(cf.base, 0o400);
        assert_eq!(cf.fixups.len(), 2);
        assert_eq!(cf.fixups[0].symbol, "Gets");
        assert_eq!(cf.fixups[0].offset, 3);
        assert_eq!(cf.fixups[1].symbol, "Puts");
    }

    #[test]
    fn encode_decode_round_trip() {
        let cf = sample();
        let words = cf.encode();
        assert_eq!(CodeFile::decode(&words).unwrap(), cf);
    }

    #[test]
    fn odd_length_symbols_round_trip() {
        let mut cf = sample();
        cf.fixups[0].symbol = "abc".into();
        let back = CodeFile::decode(&cf.encode()).unwrap();
        assert_eq!(back.fixups[0].symbol, "abc");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(CodeFile::decode(&[]).is_err());
        let mut w = sample().encode();
        w[0] = 0;
        assert!(CodeFile::decode(&w).is_err());
        let mut w = sample().encode();
        w[1] = 9;
        assert!(CodeFile::decode(&w).is_err());
        let w = sample().encode();
        assert!(CodeFile::decode(&w[..w.len() - 1]).is_err());
    }

    #[test]
    fn decode_rejects_bad_fixup_offset() {
        let mut cf = sample();
        cf.fixups[0].offset = 999;
        assert!(CodeFile::decode(&cf.encode()).is_err());
    }
}
