//! Machine error types.

use std::fmt;

/// Errors surfaced by the CPU, assembler, and state machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// The machine executed a word that decodes to no instruction (only
    /// possible for the reserved trap encodings).
    IllegalInstruction {
        /// Where it was fetched.
        pc: u16,
        /// The offending word.
        word: u16,
    },
    /// An assembler diagnostic.
    Asm {
        /// 1-based source line.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A code or state file failed to decode.
    BadImage(&'static str),
    /// The machine ran past its instruction budget (runaway program).
    BudgetExhausted,
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#06o} at {pc:#06o}")
            }
            MachineError::Asm { line, message } => write!(f, "line {line}: {message}"),
            MachineError::BadImage(what) => write!(f, "bad image: {what}"),
            MachineError::BudgetExhausted => f.write_str("instruction budget exhausted"),
        }
    }
}

impl std::error::Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = MachineError::IllegalInstruction {
            pc: 0o400,
            word: 0o60000,
        };
        assert!(e.to_string().contains("0400"));
        assert!(MachineError::Asm {
            line: 3,
            message: "bad opcode".into()
        }
        .to_string()
        .contains("line 3"));
        assert!(MachineError::BadImage("truncated")
            .to_string()
            .contains("truncated"));
        assert!(MachineError::BudgetExhausted.to_string().contains("budget"));
    }
}
