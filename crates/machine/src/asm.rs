//! A small two-pass assembler for the Nova-like instruction set.
//!
//! The system is programmed in this assembly the way the Alto OS was
//! programmed in BCPL: examples and tests write real programs, and the
//! loader (§5.1) binds their references to operating-system procedures
//! through fixup tables emitted by the [`.fixup`](#directives) directive.
//!
//! # Syntax
//!
//! ```text
//! ; comment
//!         .org 0o400        ; load address (default 0o400)
//! start:  lda 0, value      ; page-zero or PC-relative resolved per label
//!         lda 1, @ptr       ; indirect
//!         sta 0, 3,2        ; AC2-relative, displacement +3
//!         add# 0, 1, szr    ; ALU: carry/shift suffixes + '#' + skip
//!         jsr @gets         ; call an OS procedure through a fixup word
//!         jmp .-1           ; PC-relative to the instruction itself
//!         trap 0, 12        ; raw OS trap
//!         halt              ; trap 0,0
//! value:  .word 0x1234      ; literal word (number, 'c', or label)
//! buf:    .blk 16           ; reserve 16 zero words
//! msg:    .str "hello"      ; packed bytes, big-endian, length prefix word
//! gets:   .fixup "Gets"     ; one word, patched by the program loader
//! ```
//!
//! ALU mnemonics are the base op (`com neg mov inc adc sub add and`)
//! followed by an optional carry letter (`z o c`), an optional shift
//! letter (`l r s`), and an optional `#` (no-load); the optional third
//! operand is a skip test (`skp szc snc szr snr sez sbn`).

use std::collections::HashMap;

use crate::errors::MachineError;
use crate::instr::{AluOp, CarryCtl, Index, Instr, MemFn, Shift, SkipTest};
use crate::traps;

/// The result of assembling a source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assembled {
    /// Load address of the first word.
    pub base: u16,
    /// Entry point (absolute address).
    pub entry: u16,
    /// The emitted words.
    pub words: Vec<u16>,
    /// Fixups: (offset into `words`, external symbol name).
    pub fixups: Vec<(u16, String)>,
    /// Label addresses (absolute), for tests and debuggers.
    pub labels: HashMap<String, u16>,
}

/// Assembles a source string (see module docs for the syntax).
///
/// # Examples
///
/// ```
/// use alto_machine::{assemble, Machine, Step};
/// use alto_sim::{SimClock, Trace};
///
/// let code = assemble("lda 0, k\nadd 0, 0\nhalt\nk: .word 21").unwrap();
/// let mut m = Machine::new(SimClock::new(), Trace::new());
/// m.load_program(code.base, &code.words).unwrap();
/// assert_eq!(m.run(100).unwrap(), Step::Halted);
/// assert_eq!(m.ac[0], 42);
/// ```
pub fn assemble(source: &str) -> Result<Assembled, MachineError> {
    let lines = parse_lines(source)?;
    // Pass 1: label addresses.
    let mut base = 0o400u16;
    let mut entry_label: Option<(String, usize)> = None;
    let mut labels: HashMap<String, u16> = HashMap::new();
    let mut addr = base as u32;
    let mut org_set = false;
    for line in &lines {
        if let Some(label) = &line.label {
            if labels.insert(label.clone(), addr as u16).is_some() {
                return Err(err(line.number, format!("duplicate label \"{label}\"")));
            }
        }
        match &line.body {
            Body::None => {}
            Body::Directive(d, args) => match d.as_str() {
                ".org" => {
                    if org_set || addr != base as u32 {
                        return Err(err(line.number, ".org must come first".into()));
                    }
                    base = parse_number(args_one(args, line.number)?, line.number)?;
                    addr = base as u32;
                    org_set = true;
                    // Re-bind any label on the .org line itself.
                    if let Some(label) = &line.label {
                        labels.insert(label.clone(), base);
                    }
                }
                ".entry" => {
                    entry_label = Some((args_one(args, line.number)?.to_string(), line.number));
                }
                ".word" | ".fixup" => addr += 1,
                ".blk" => addr += parse_number(args_one(args, line.number)?, line.number)? as u32,
                ".str" => addr += 1 + str_words(args_one(args, line.number)?, line.number)? as u32,
                other => return Err(err(line.number, format!("unknown directive {other}"))),
            },
            Body::Instruction(..) => addr += 1,
        }
        if addr > 0x1_0000 {
            return Err(err(
                line.number,
                "program runs past the end of memory".into(),
            ));
        }
    }

    // Pass 2: emit.
    let mut words: Vec<u16> = Vec::new();
    let mut fixups: Vec<(u16, String)> = Vec::new();
    let mut addr = base;
    for line in &lines {
        match &line.body {
            Body::None => {}
            Body::Directive(d, args) => match d.as_str() {
                ".org" | ".entry" => {}
                ".word" => {
                    let w = value_expr(args_one(args, line.number)?, &labels, line.number)?;
                    words.push(w);
                    addr = addr.wrapping_add(1);
                }
                ".fixup" => {
                    let name = parse_string(args_one(args, line.number)?, line.number)?;
                    fixups.push((words.len() as u16, name));
                    words.push(0);
                    addr = addr.wrapping_add(1);
                }
                ".blk" => {
                    let n = parse_number(args_one(args, line.number)?, line.number)?;
                    words.extend(std::iter::repeat_n(0u16, n as usize));
                    addr = addr.wrapping_add(n);
                }
                ".str" => {
                    let s = parse_string(args_one(args, line.number)?, line.number)?;
                    words.push(s.len() as u16);
                    for chunk in s.as_bytes().chunks(2) {
                        let hi = (chunk[0] as u16) << 8;
                        let lo = chunk.get(1).map_or(0, |&b| b as u16);
                        words.push(hi | lo);
                    }
                    addr = addr
                        .wrapping_add(1 + str_words(args_one(args, line.number)?, line.number)?);
                }
                _ => unreachable!("validated in pass 1"),
            },
            Body::Instruction(mnemonic, operands) => {
                let w = encode_instruction(mnemonic, operands, addr, &labels, line.number)?;
                words.push(w);
                addr = addr.wrapping_add(1);
            }
        }
    }

    let entry = match entry_label {
        None => base,
        Some((label, number)) => *labels
            .get(&label)
            .ok_or_else(|| err(number, format!("unknown entry label \"{label}\"")))?,
    };
    Ok(Assembled {
        base,
        entry,
        words,
        fixups,
        labels,
    })
}

struct Line {
    number: usize,
    label: Option<String>,
    body: Body,
}

enum Body {
    None,
    Directive(String, String),
    Instruction(String, String),
}

fn err(line: usize, message: String) -> MachineError {
    MachineError::Asm { line, message }
}

fn parse_lines(source: &str) -> Result<Vec<Line>, MachineError> {
    let mut out = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let number = i + 1;
        // Strip comments, respecting character/string literals crudely
        // (no ';' inside literals in practice).
        let text = raw.split(';').next().unwrap_or("").trim();
        if text.is_empty() {
            out.push(Line {
                number,
                label: None,
                body: Body::None,
            });
            continue;
        }
        let (label, rest) = match text.split_once(':') {
            Some((l, rest)) if is_identifier(l.trim()) => (Some(l.trim().to_string()), rest.trim()),
            _ => (None, text),
        };
        let body = if rest.is_empty() {
            Body::None
        } else {
            let (head, tail) = match rest.split_once(char::is_whitespace) {
                Some((h, t)) => (h.trim(), t.trim()),
                None => (rest, ""),
            };
            if head.starts_with('.') {
                Body::Directive(head.to_ascii_lowercase(), tail.to_string())
            } else {
                Body::Instruction(head.to_ascii_lowercase(), tail.to_string())
            }
        };
        out.push(Line {
            number,
            label,
            body,
        });
    }
    Ok(out)
}

fn is_identifier(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn args_one(args: &str, line: usize) -> Result<&str, MachineError> {
    let a = args.trim();
    if a.is_empty() {
        return Err(err(line, "missing operand".into()));
    }
    Ok(a)
}

fn parse_string(arg: &str, line: usize) -> Result<String, MachineError> {
    let a = arg.trim();
    if a.len() >= 2 && a.starts_with('"') && a.ends_with('"') {
        Ok(a[1..a.len() - 1].to_string())
    } else {
        Err(err(line, format!("expected a quoted string, got {a}")))
    }
}

fn str_words(arg: &str, line: usize) -> Result<u16, MachineError> {
    Ok(parse_string(arg, line)?.len().div_ceil(2) as u16)
}

fn parse_number(arg: &str, line: usize) -> Result<u16, MachineError> {
    parse_number_i32(arg, line).and_then(|v| {
        if (0..=0xFFFF).contains(&v) {
            Ok(v as u16)
        } else if (-0x8000..0).contains(&v) {
            Ok(v as i16 as u16)
        } else {
            Err(err(line, format!("number {arg} out of 16-bit range")))
        }
    })
}

fn parse_number_i32(arg: &str, line: usize) -> Result<i32, MachineError> {
    let a = arg.trim();
    if a.len() == 3 && a.starts_with('\'') && a.ends_with('\'') {
        return Ok(a.as_bytes()[1] as i32);
    }
    let (neg, body) = match a.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, a),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i32::from_str_radix(hex, 16)
    } else if let Some(oct) = body.strip_prefix("0o").or_else(|| body.strip_prefix("0O")) {
        i32::from_str_radix(oct, 8)
    } else {
        body.parse::<i32>()
    }
    .map_err(|_| err(line, format!("bad number \"{a}\"")))?;
    Ok(if neg { -v } else { v })
}

/// A `.word` operand: a number, a character, or a label (absolute value).
fn value_expr(arg: &str, labels: &HashMap<String, u16>, line: usize) -> Result<u16, MachineError> {
    let a = arg.trim();
    if is_identifier(a) {
        return labels
            .get(a)
            .copied()
            .ok_or_else(|| err(line, format!("unknown label \"{a}\"")));
    }
    parse_number(a, line)
}

/// Resolves an address operand to `(indirect, index, disp)` at `pc`.
fn address_operand(
    parts: &[&str],
    pc: u16,
    labels: &HashMap<String, u16>,
    line: usize,
) -> Result<(bool, Index, u8), MachineError> {
    if parts.is_empty() {
        return Err(err(line, "missing address operand".into()));
    }
    let mut expr = parts[0].trim();
    let indirect = if let Some(rest) = expr.strip_prefix('@') {
        expr = rest.trim();
        true
    } else {
        false
    };
    // Explicit index register?
    if parts.len() == 2 {
        let index = match parts[1].trim() {
            "2" => Index::Ac2Relative,
            "3" => Index::Ac3Relative,
            other => return Err(err(line, format!("bad index register \"{other}\""))),
        };
        let disp = parse_number_i32(expr, line)?;
        if !(-128..=127).contains(&disp) {
            return Err(err(line, format!("displacement {disp} out of range")));
        }
        return Ok((indirect, index, disp as i8 as u8));
    }
    if parts.len() > 2 {
        return Err(err(line, "too many address operands".into()));
    }
    // `.` +- n: PC-relative to this instruction.
    if let Some(rest) = expr.strip_prefix('.') {
        let offset = if rest.is_empty() {
            0
        } else {
            parse_number_i32(rest, line)?
        };
        if !(-128..=127).contains(&offset) {
            return Err(err(line, format!("PC offset {offset} out of range")));
        }
        return Ok((indirect, Index::PcRelative, offset as i8 as u8));
    }
    // Label or absolute number.
    let target = if is_identifier(expr) {
        *labels
            .get(expr)
            .ok_or_else(|| err(line, format!("unknown label \"{expr}\"")))?
    } else {
        parse_number(expr, line)?
    };
    if target < 256 {
        return Ok((indirect, Index::PageZero, target as u8));
    }
    let rel = target as i32 - pc as i32;
    if (-128..=127).contains(&rel) {
        return Ok((indirect, Index::PcRelative, rel as i8 as u8));
    }
    Err(err(
        line,
        format!("target {target:#o} unreachable from {pc:#o}; use an indirect pointer"),
    ))
}

fn parse_ac(arg: &str, line: usize) -> Result<u8, MachineError> {
    match arg.trim() {
        "0" => Ok(0),
        "1" => Ok(1),
        "2" => Ok(2),
        "3" => Ok(3),
        other => Err(err(line, format!("bad accumulator \"{other}\""))),
    }
}

fn encode_instruction(
    mnemonic: &str,
    operands: &str,
    pc: u16,
    labels: &HashMap<String, u16>,
    line: usize,
) -> Result<u16, MachineError> {
    let parts: Vec<&str> = if operands.is_empty() {
        Vec::new()
    } else {
        operands.split(',').map(str::trim).collect()
    };

    // Zero-operand trap aliases.
    let alias = |code: u16| Instr::Trap { ac: 0, code };
    match mnemonic {
        "halt" => return Ok(alias(traps::HALT).encode()),
        "inten" => return Ok(alias(traps::INTEN).encode()),
        "intds" => return Ok(alias(traps::INTDS).encode()),
        "reti" => return Ok(alias(traps::RETI).encode()),
        "kbdget" => return Ok(alias(traps::KBDGET).encode()),
        "trap" => {
            if parts.len() != 2 {
                return Err(err(line, "trap needs: trap AC, CODE".into()));
            }
            let ac = parse_ac(parts[0], line)?;
            let code = parse_number(parts[1], line)?;
            if code > 0x7FF {
                return Err(err(line, format!("trap code {code} exceeds 11 bits")));
            }
            return Ok(Instr::Trap { ac, code }.encode());
        }
        _ => {}
    }

    // Memory-reference.
    let memfn = match mnemonic {
        "jmp" => Some((MemFn::Jmp, false)),
        "jsr" => Some((MemFn::Jsr, false)),
        "isz" => Some((MemFn::Isz, false)),
        "dsz" => Some((MemFn::Dsz, false)),
        "lda" => Some((MemFn::Jmp, true)), // placeholder, handled below
        "sta" => Some((MemFn::Jmp, true)),
        _ => None,
    };
    if let Some((func, has_ac)) = memfn {
        if has_ac {
            if parts.len() < 2 {
                return Err(err(line, format!("{mnemonic} needs: {mnemonic} AC, ADDR")));
            }
            let ac = parse_ac(parts[0], line)?;
            let (indirect, index, disp) = address_operand(&parts[1..], pc, labels, line)?;
            return Ok(match mnemonic {
                "lda" => Instr::Lda {
                    ac,
                    indirect,
                    index,
                    disp,
                },
                _ => Instr::Sta {
                    ac,
                    indirect,
                    index,
                    disp,
                },
            }
            .encode());
        }
        let (indirect, index, disp) = address_operand(&parts, pc, labels, line)?;
        return Ok(Instr::Mem {
            func,
            indirect,
            index,
            disp,
        }
        .encode());
    }

    // ALU: base op + optional carry + optional shift + optional '#'.
    let mut rest = mnemonic;
    let no_load = if let Some(r) = rest.strip_suffix('#') {
        rest = r;
        true
    } else {
        false
    };
    if rest.len() < 3 {
        return Err(err(line, format!("unknown instruction \"{mnemonic}\"")));
    }
    let (base_op, suffix) = rest.split_at(3);
    let op = match base_op {
        "com" => AluOp::Com,
        "neg" => AluOp::Neg,
        "mov" => AluOp::Mov,
        "inc" => AluOp::Inc,
        "adc" => AluOp::Adc,
        "sub" => AluOp::Sub,
        "add" => AluOp::Add,
        "and" => AluOp::And,
        _ => return Err(err(line, format!("unknown instruction \"{mnemonic}\""))),
    };
    let mut carry = CarryCtl::Leave;
    let mut shift = Shift::None;
    let mut chars = suffix.chars().peekable();
    if let Some(&c) = chars.peek() {
        if let Some(cc) = match c {
            'z' => Some(CarryCtl::Zero),
            'o' => Some(CarryCtl::One),
            'c' => Some(CarryCtl::Complement),
            _ => None,
        } {
            carry = cc;
            chars.next();
        }
    }
    if let Some(&c) = chars.peek() {
        if let Some(sh) = match c {
            'l' => Some(Shift::Left),
            'r' => Some(Shift::Right),
            's' => Some(Shift::Swap),
            _ => None,
        } {
            shift = sh;
            chars.next();
        }
    }
    if chars.next().is_some() {
        return Err(err(line, format!("unknown instruction \"{mnemonic}\"")));
    }
    if parts.len() < 2 || parts.len() > 3 {
        return Err(err(
            line,
            format!("{base_op} needs: {base_op} SRC, DST[, SKIP]"),
        ));
    }
    let src = parse_ac(parts[0], line)?;
    let dst = parse_ac(parts[1], line)?;
    let skip = if parts.len() == 3 {
        match parts[2].to_ascii_lowercase().as_str() {
            "skp" => SkipTest::Always,
            "szc" => SkipTest::CarryZero,
            "snc" => SkipTest::CarryNonzero,
            "szr" => SkipTest::ResultZero,
            "snr" => SkipTest::ResultNonzero,
            "sez" => SkipTest::EitherZero,
            "sbn" => SkipTest::BothNonzero,
            other => return Err(err(line, format!("bad skip \"{other}\""))),
        }
    } else {
        SkipTest::Never
    };
    Ok(Instr::Alu {
        src,
        dst,
        op,
        shift,
        carry,
        no_load,
        skip,
    }
    .encode())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_program_assembles() {
        let out = assemble(
            "
            lda 0, k
            halt
k:          .word 42
            ",
        )
        .unwrap();
        assert_eq!(out.base, 0o400);
        assert_eq!(out.words.len(), 3);
        assert_eq!(out.words[2], 42);
        assert_eq!(out.labels["k"], 0o402);
    }

    #[test]
    fn org_and_entry() {
        let out = assemble(
            "
            .org 0o1000
            .entry start
k:          .word 1
start:      halt
            ",
        )
        .unwrap();
        assert_eq!(out.base, 0o1000);
        assert_eq!(out.entry, 0o1001);
    }

    #[test]
    fn org_must_come_first() {
        let e = assemble("halt\n.org 0o1000").unwrap_err();
        assert!(matches!(e, MachineError::Asm { line: 2, .. }));
    }

    #[test]
    fn fixups_recorded() {
        let out = assemble(
            "
            jsr @gets
            halt
gets:       .fixup \"Gets\"
            ",
        )
        .unwrap();
        assert_eq!(out.fixups, vec![(2, "Gets".to_string())]);
        assert_eq!(out.words[2], 0);
    }

    #[test]
    fn str_directive_packs_bytes() {
        let out = assemble("msg: .str \"abc\"").unwrap();
        assert_eq!(out.words[0], 3);
        assert_eq!(out.words[1], 0x6162);
        assert_eq!(out.words[2], 0x6300);
    }

    #[test]
    fn blk_reserves_zeros() {
        let out = assemble("buf: .blk 4\nend: .word 1").unwrap();
        assert_eq!(out.words.len(), 5);
        assert_eq!(out.labels["end"], 0o404);
    }

    #[test]
    fn char_and_number_literals() {
        let out = assemble(".word 'A'\n.word 0x10\n.word 0o17\n.word -1").unwrap();
        assert_eq!(out.words, vec![65, 16, 15, 0xFFFF]);
    }

    #[test]
    fn word_can_hold_a_label() {
        let out = assemble(
            "
ptr:        .word target
            .blk 6
target:     halt
            ",
        )
        .unwrap();
        assert_eq!(out.words[0], out.labels["target"]);
    }

    #[test]
    fn pc_relative_backward_and_forward() {
        let out = assemble(
            "
a:          jmp b
            halt
b:          jmp a
            ",
        )
        .unwrap();
        // jmp b at 0o400: disp +2; jmp a at 0o402: disp -2.
        assert_eq!(out.words[0] & 0xFF, 2);
        assert_eq!(out.words[2] & 0xFF, 0xFE);
    }

    #[test]
    fn unreachable_target_is_an_error() {
        let e = assemble(
            "
            jmp far
            .blk 300
far:        halt
            ",
        )
        .unwrap_err();
        assert!(matches!(e, MachineError::Asm { .. }));
        assert!(e.to_string().contains("unreachable"));
    }

    #[test]
    fn indexed_addressing() {
        let out = assemble("lda 0, 3,2\nsta 1, -1,3").unwrap();
        let i0 = crate::instr::Instr::decode(out.words[0]);
        assert_eq!(
            i0,
            Instr::Lda {
                ac: 0,
                indirect: false,
                index: Index::Ac2Relative,
                disp: 3
            }
        );
        let i1 = crate::instr::Instr::decode(out.words[1]);
        assert_eq!(
            i1,
            Instr::Sta {
                ac: 1,
                indirect: false,
                index: Index::Ac3Relative,
                disp: 0xFF
            }
        );
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("x: halt\nx: halt").unwrap_err();
        assert!(e.to_string().contains("duplicate"));
    }

    #[test]
    fn unknown_mnemonic_rejected() {
        let e = assemble("frobnicate 1, 2").unwrap_err();
        assert!(e.to_string().contains("unknown instruction"));
    }

    #[test]
    fn unknown_label_rejected() {
        let e = assemble("jmp nowhere").unwrap_err();
        assert!(e.to_string().contains("nowhere"));
    }

    #[test]
    fn alu_suffix_matrix() {
        for (m, carry, shift, no_load) in [
            ("add", CarryCtl::Leave, Shift::None, false),
            ("addz", CarryCtl::Zero, Shift::None, false),
            ("addol", CarryCtl::One, Shift::Left, false),
            ("addcr", CarryCtl::Complement, Shift::Right, false),
            ("adds", CarryCtl::Leave, Shift::Swap, false),
            ("addzs#", CarryCtl::Zero, Shift::Swap, true),
        ] {
            let out = assemble(&format!("{m} 0, 1")).unwrap();
            match Instr::decode(out.words[0]) {
                Instr::Alu {
                    op,
                    carry: c,
                    shift: s,
                    no_load: n,
                    ..
                } => {
                    assert_eq!(op, AluOp::Add, "{m}");
                    assert_eq!(c, carry, "{m}");
                    assert_eq!(s, shift, "{m}");
                    assert_eq!(n, no_load, "{m}");
                }
                other => panic!("{m}: {other:?}"),
            }
        }
    }

    #[test]
    fn labels_on_their_own_line() {
        let out = assemble("start:\n    halt").unwrap();
        assert_eq!(out.labels["start"], 0o400);
        assert_eq!(out.words.len(), 1);
    }
}
