//! The interrupt-driven keyboard device (§2).
//!
//! "The current version of the system has only two processes, one of which
//! puts keyboard input characters into a buffer, while the other does all
//! the interesting work. The keyboard process is interrupt-driven…"
//!
//! Tests and examples script the user: key events are queued with
//! timestamps, and a key becomes *pending* (raising an interrupt request)
//! once the simulated clock passes its time. The system ISR — Rust code in
//! `alto-os` standing in for the keyboard process — drains pending keys
//! into the resident type-ahead buffer.

use std::collections::VecDeque;

use alto_sim::SimTime;

/// A scripted key event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyEvent {
    /// When the key is struck.
    pub at: SimTime,
    /// The character (7-bit ASCII in practice).
    pub key: u16,
}

/// The keyboard device: a time-ordered script of key events.
#[derive(Debug, Default)]
pub struct Keyboard {
    /// Events not yet struck (sorted by time).
    script: VecDeque<KeyEvent>,
}

impl Keyboard {
    /// An empty keyboard.
    pub fn new() -> Keyboard {
        Keyboard::default()
    }

    /// Scripts a key press at an absolute simulated time.
    ///
    /// Events must be scripted in non-decreasing time order.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the last scripted event.
    pub fn press_at(&mut self, at: SimTime, key: u8) {
        if let Some(last) = self.script.back() {
            assert!(at >= last.at, "key events must be scripted in time order");
        }
        self.script.push_back(KeyEvent {
            at,
            key: key as u16,
        });
    }

    /// Scripts an entire string, one key every `spacing`.
    pub fn type_string(&mut self, start: SimTime, spacing: SimTime, text: &str) {
        let mut at = start;
        for b in text.bytes() {
            self.press_at(at, b);
            at += spacing;
        }
    }

    /// True if a key has been struck by time `now` and not yet read —
    /// the device's interrupt request line.
    pub fn pending(&self, now: SimTime) -> bool {
        self.script.front().is_some_and(|e| e.at <= now)
    }

    /// Reads the next struck key, if any is ready (the device has no
    /// buffer of its own — that is the system's job, §2).
    ///
    /// This variant is for the system ISR, which runs at a known `now`.
    pub fn read_at(&mut self, now: SimTime) -> Option<u16> {
        if self.pending(now) {
            self.script.pop_front().map(|e| e.key)
        } else {
            None
        }
    }

    /// Reads the next struck key unconditionally (test convenience —
    /// treats every scripted key as already struck).
    pub fn read(&mut self) -> Option<u16> {
        self.script.pop_front().map(|e| e.key)
    }

    /// Number of scripted events not yet read.
    pub fn remaining(&self) -> usize {
        self.script.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_respects_time() {
        let mut k = Keyboard::new();
        k.press_at(SimTime::from_millis(10), b'a');
        assert!(!k.pending(SimTime::from_millis(9)));
        assert!(k.pending(SimTime::from_millis(10)));
        assert!(k.pending(SimTime::from_millis(11)));
    }

    #[test]
    fn read_at_only_returns_struck_keys() {
        let mut k = Keyboard::new();
        k.press_at(SimTime::from_millis(10), b'a');
        k.press_at(SimTime::from_millis(20), b'b');
        assert_eq!(k.read_at(SimTime::from_millis(5)), None);
        assert_eq!(k.read_at(SimTime::from_millis(15)), Some(b'a' as u16));
        assert_eq!(k.read_at(SimTime::from_millis(15)), None);
        assert_eq!(k.read_at(SimTime::from_millis(25)), Some(b'b' as u16));
    }

    #[test]
    fn type_string_spaces_events() {
        let mut k = Keyboard::new();
        k.type_string(SimTime::ZERO, SimTime::from_millis(100), "hi");
        assert_eq!(k.remaining(), 2);
        assert!(k.pending(SimTime::ZERO));
        assert_eq!(k.read_at(SimTime::ZERO), Some(b'h' as u16));
        assert!(!k.pending(SimTime::from_millis(99)));
        assert!(k.pending(SimTime::from_millis(100)));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_events_panic() {
        let mut k = Keyboard::new();
        k.press_at(SimTime::from_millis(10), b'a');
        k.press_at(SimTime::from_millis(5), b'b');
    }
}
