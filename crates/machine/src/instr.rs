//! Instruction encoding, decoding, and disassembly.
//!
//! Word layout (bit 15 is the most significant):
//!
//! ```text
//! memory reference   0 o o a a i x x d d d d d d d d
//!   class ooaa: 0000 JMP, 0001 JSR, 0010 ISZ, 0011 DSZ (oo=00)
//!               oo=01: LDA aa;  oo=10: STA aa
//!   i: indirect;  xx: 00 page zero, 01 PC-relative (signed),
//!                     10 AC2-relative (signed), 11 AC3-relative (signed)
//! trap (I/O class)   0 1 1 a a c c c c c c c c c c c
//!   aa: accumulator operand, ccc…: 11-bit trap code
//! ALU                1 s s d d o o o f f c c n k k k
//!   ooo: COM NEG MOV INC ADC SUB ADD AND
//!   ff:  shift (none, L, R, S byte-swap)
//!   cc:  carry (leave, Z, O, C)
//!   n:   no-load
//!   kkk: skip (never, SKP, SZC, SNC, SZR, SNR, SEZ, SBN)
//! ```

use std::fmt;

/// Memory-reference functions in the `000` class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemFn {
    /// Jump.
    Jmp,
    /// Jump to subroutine (AC3 receives the return address).
    Jsr,
    /// Increment memory and skip if the result is zero.
    Isz,
    /// Decrement memory and skip if the result is zero.
    Dsz,
}

/// Addressing modes for memory-reference instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Index {
    /// Absolute within page zero: displacement 0..=255.
    PageZero,
    /// PC-relative: signed displacement.
    PcRelative,
    /// AC2-relative: signed displacement.
    Ac2Relative,
    /// AC3-relative: signed displacement.
    Ac3Relative,
}

/// ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// One's complement of the source.
    Com,
    /// Two's complement (negate).
    Neg,
    /// Move.
    Mov,
    /// Increment.
    Inc,
    /// Add with carry.
    Adc,
    /// Subtract.
    Sub,
    /// Add.
    Add,
    /// Bitwise and.
    And,
}

/// ALU shift field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shift {
    /// No shift.
    None,
    /// Rotate left one bit through carry.
    Left,
    /// Rotate right one bit through carry.
    Right,
    /// Swap bytes (carry unaffected).
    Swap,
}

/// ALU carry-control field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CarryCtl {
    /// Use the current carry.
    Leave,
    /// Force carry 0.
    Zero,
    /// Force carry 1.
    One,
    /// Complement the carry.
    Complement,
}

/// ALU skip tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SkipTest {
    /// Never skip.
    Never,
    /// Always skip.
    Always,
    /// Skip if carry is zero.
    CarryZero,
    /// Skip if carry is nonzero.
    CarryNonzero,
    /// Skip if result is zero.
    ResultZero,
    /// Skip if result is nonzero.
    ResultNonzero,
    /// Skip if either carry or result is zero.
    EitherZero,
    /// Skip if both carry and result are nonzero.
    BothNonzero,
}

/// A decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Memory-reference without an accumulator.
    Mem {
        /// Which function.
        func: MemFn,
        /// Indirect bit.
        indirect: bool,
        /// Index mode.
        index: Index,
        /// Raw 8-bit displacement.
        disp: u8,
    },
    /// Load accumulator.
    Lda {
        /// Destination accumulator.
        ac: u8,
        /// Indirect bit.
        indirect: bool,
        /// Index mode.
        index: Index,
        /// Raw 8-bit displacement.
        disp: u8,
    },
    /// Store accumulator.
    Sta {
        /// Source accumulator.
        ac: u8,
        /// Indirect bit.
        indirect: bool,
        /// Index mode.
        index: Index,
        /// Raw 8-bit displacement.
        disp: u8,
    },
    /// Operating-system trap (the repurposed I/O class).
    Trap {
        /// Accumulator operand named by the instruction.
        ac: u8,
        /// 11-bit trap code.
        code: u16,
    },
    /// Two-accumulator ALU operation.
    Alu {
        /// Source accumulator.
        src: u8,
        /// Destination accumulator.
        dst: u8,
        /// Operation.
        op: AluOp,
        /// Shift field.
        shift: Shift,
        /// Carry control.
        carry: CarryCtl,
        /// No-load: compute flags but discard the result.
        no_load: bool,
        /// Skip test.
        skip: SkipTest,
    },
}

fn index_from_bits(bits: u16) -> Index {
    match bits & 3 {
        0 => Index::PageZero,
        1 => Index::PcRelative,
        2 => Index::Ac2Relative,
        _ => Index::Ac3Relative,
    }
}

fn index_bits(i: Index) -> u16 {
    match i {
        Index::PageZero => 0,
        Index::PcRelative => 1,
        Index::Ac2Relative => 2,
        Index::Ac3Relative => 3,
    }
}

impl Instr {
    /// Decodes a word. Every word decodes to *something* (like the real
    /// machine); there are no reserved encodings.
    pub fn decode(word: u16) -> Instr {
        if word & 0x8000 != 0 {
            let op = match (word >> 8) & 7 {
                0 => AluOp::Com,
                1 => AluOp::Neg,
                2 => AluOp::Mov,
                3 => AluOp::Inc,
                4 => AluOp::Adc,
                5 => AluOp::Sub,
                6 => AluOp::Add,
                _ => AluOp::And,
            };
            let shift = match (word >> 6) & 3 {
                0 => Shift::None,
                1 => Shift::Left,
                2 => Shift::Right,
                _ => Shift::Swap,
            };
            let carry = match (word >> 4) & 3 {
                0 => CarryCtl::Leave,
                1 => CarryCtl::Zero,
                2 => CarryCtl::One,
                _ => CarryCtl::Complement,
            };
            let skip = match word & 7 {
                0 => SkipTest::Never,
                1 => SkipTest::Always,
                2 => SkipTest::CarryZero,
                3 => SkipTest::CarryNonzero,
                4 => SkipTest::ResultZero,
                5 => SkipTest::ResultNonzero,
                6 => SkipTest::EitherZero,
                _ => SkipTest::BothNonzero,
            };
            return Instr::Alu {
                src: ((word >> 13) & 3) as u8,
                dst: ((word >> 11) & 3) as u8,
                op,
                shift,
                carry,
                no_load: word & 8 != 0,
                skip,
            };
        }
        let class = (word >> 13) & 3;
        let acbits = ((word >> 11) & 3) as u8;
        let indirect = word & 0x0400 != 0;
        let index = index_from_bits(word >> 8);
        let disp = word as u8;
        match class {
            0 => Instr::Mem {
                func: match acbits {
                    0 => MemFn::Jmp,
                    1 => MemFn::Jsr,
                    2 => MemFn::Isz,
                    _ => MemFn::Dsz,
                },
                indirect,
                index,
                disp,
            },
            1 => Instr::Lda {
                ac: acbits,
                indirect,
                index,
                disp,
            },
            2 => Instr::Sta {
                ac: acbits,
                indirect,
                index,
                disp,
            },
            _ => Instr::Trap {
                ac: acbits,
                code: word & 0x07FF,
            },
        }
    }

    /// Encodes the instruction to a word.
    pub fn encode(self) -> u16 {
        match self {
            Instr::Mem {
                func,
                indirect,
                index,
                disp,
            } => {
                let f = match func {
                    MemFn::Jmp => 0,
                    MemFn::Jsr => 1,
                    MemFn::Isz => 2,
                    MemFn::Dsz => 3,
                };
                (f << 11) | (u16::from(indirect) << 10) | (index_bits(index) << 8) | disp as u16
            }
            Instr::Lda {
                ac,
                indirect,
                index,
                disp,
            } => {
                0x2000
                    | ((ac as u16) << 11)
                    | (u16::from(indirect) << 10)
                    | (index_bits(index) << 8)
                    | disp as u16
            }
            Instr::Sta {
                ac,
                indirect,
                index,
                disp,
            } => {
                0x4000
                    | ((ac as u16) << 11)
                    | (u16::from(indirect) << 10)
                    | (index_bits(index) << 8)
                    | disp as u16
            }
            Instr::Trap { ac, code } => 0x6000 | ((ac as u16) << 11) | (code & 0x07FF),
            Instr::Alu {
                src,
                dst,
                op,
                shift,
                carry,
                no_load,
                skip,
            } => {
                let o = match op {
                    AluOp::Com => 0,
                    AluOp::Neg => 1,
                    AluOp::Mov => 2,
                    AluOp::Inc => 3,
                    AluOp::Adc => 4,
                    AluOp::Sub => 5,
                    AluOp::Add => 6,
                    AluOp::And => 7,
                };
                let f = match shift {
                    Shift::None => 0,
                    Shift::Left => 1,
                    Shift::Right => 2,
                    Shift::Swap => 3,
                };
                let c = match carry {
                    CarryCtl::Leave => 0,
                    CarryCtl::Zero => 1,
                    CarryCtl::One => 2,
                    CarryCtl::Complement => 3,
                };
                let k = match skip {
                    SkipTest::Never => 0,
                    SkipTest::Always => 1,
                    SkipTest::CarryZero => 2,
                    SkipTest::CarryNonzero => 3,
                    SkipTest::ResultZero => 4,
                    SkipTest::ResultNonzero => 5,
                    SkipTest::EitherZero => 6,
                    SkipTest::BothNonzero => 7,
                };
                0x8000
                    | ((src as u16) << 13)
                    | ((dst as u16) << 11)
                    | (o << 8)
                    | (f << 6)
                    | (c << 4)
                    | (u16::from(no_load) << 3)
                    | k
            }
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn ea(f: &mut fmt::Formatter<'_>, indirect: bool, index: Index, disp: u8) -> fmt::Result {
            let at = if indirect { "@" } else { "" };
            match index {
                Index::PageZero => write!(f, "{at}{disp:#o}"),
                Index::PcRelative => write!(f, "{at}.{:+}", disp as i8),
                Index::Ac2Relative => write!(f, "{at}{:+},2", disp as i8),
                Index::Ac3Relative => write!(f, "{at}{:+},3", disp as i8),
            }
        }
        match *self {
            Instr::Mem {
                func,
                indirect,
                index,
                disp,
            } => {
                let name = match func {
                    MemFn::Jmp => "JMP",
                    MemFn::Jsr => "JSR",
                    MemFn::Isz => "ISZ",
                    MemFn::Dsz => "DSZ",
                };
                write!(f, "{name} ")?;
                ea(f, indirect, index, disp)
            }
            Instr::Lda {
                ac,
                indirect,
                index,
                disp,
            } => {
                write!(f, "LDA {ac}, ")?;
                ea(f, indirect, index, disp)
            }
            Instr::Sta {
                ac,
                indirect,
                index,
                disp,
            } => {
                write!(f, "STA {ac}, ")?;
                ea(f, indirect, index, disp)
            }
            Instr::Trap { ac, code } => write!(f, "TRAP {ac}, {code}"),
            Instr::Alu {
                src,
                dst,
                op,
                shift,
                carry,
                no_load,
                skip,
            } => {
                let name = match op {
                    AluOp::Com => "COM",
                    AluOp::Neg => "NEG",
                    AluOp::Mov => "MOV",
                    AluOp::Inc => "INC",
                    AluOp::Adc => "ADC",
                    AluOp::Sub => "SUB",
                    AluOp::Add => "ADD",
                    AluOp::And => "AND",
                };
                let c = match carry {
                    CarryCtl::Leave => "",
                    CarryCtl::Zero => "Z",
                    CarryCtl::One => "O",
                    CarryCtl::Complement => "C",
                };
                let s = match shift {
                    Shift::None => "",
                    Shift::Left => "L",
                    Shift::Right => "R",
                    Shift::Swap => "S",
                };
                let n = if no_load { "#" } else { "" };
                write!(f, "{name}{c}{s}{n} {src}, {dst}")?;
                let k = match skip {
                    SkipTest::Never => "",
                    SkipTest::Always => ", SKP",
                    SkipTest::CarryZero => ", SZC",
                    SkipTest::CarryNonzero => ", SNC",
                    SkipTest::ResultZero => ", SZR",
                    SkipTest::ResultNonzero => ", SNR",
                    SkipTest::EitherZero => ", SEZ",
                    SkipTest::BothNonzero => ", SBN",
                };
                f.write_str(k)
            }
        }
    }
}

/// Disassembles one word.
pub fn disassemble(word: u16) -> String {
    Instr::decode(word).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_word_round_trips() {
        // decode/encode is a bijection on all 65536 words.
        for w in 0..=u16::MAX {
            let i = Instr::decode(w);
            assert_eq!(i.encode(), w, "word {w:#06x} -> {i:?}");
        }
    }

    #[test]
    fn decodes_known_encodings() {
        // LDA 1, PC-relative +4.
        let i = Instr::decode(0x2000 | (1 << 11) | (1 << 8) | 4);
        assert_eq!(
            i,
            Instr::Lda {
                ac: 1,
                indirect: false,
                index: Index::PcRelative,
                disp: 4
            }
        );
        // JSR @page-zero 0o20.
        let i = Instr::decode((1 << 11) | (1 << 10) | 0o20);
        assert_eq!(
            i,
            Instr::Mem {
                func: MemFn::Jsr,
                indirect: true,
                index: Index::PageZero,
                disp: 0o20
            }
        );
        // ADD 0,1 with carry-zero and left shift.
        let w = Instr::Alu {
            src: 0,
            dst: 1,
            op: AluOp::Add,
            shift: Shift::Left,
            carry: CarryCtl::Zero,
            no_load: false,
            skip: SkipTest::Never,
        }
        .encode();
        assert_eq!(w & 0x8000, 0x8000);
        assert_eq!(
            Instr::decode(w),
            Instr::Alu {
                src: 0,
                dst: 1,
                op: AluOp::Add,
                shift: Shift::Left,
                carry: CarryCtl::Zero,
                no_load: false,
                skip: SkipTest::Never,
            }
        );
    }

    #[test]
    fn trap_code_range() {
        let i = Instr::Trap { ac: 2, code: 0x7FF };
        let w = i.encode();
        assert_eq!(Instr::decode(w), i);
        // Code is masked to 11 bits.
        let j = Instr::Trap { ac: 0, code: 0xFFF };
        assert_eq!(
            Instr::decode(j.encode()),
            Instr::Trap { ac: 0, code: 0x7FF }
        );
    }

    #[test]
    fn disassembly_is_readable() {
        assert_eq!(
            disassemble(
                Instr::Lda {
                    ac: 0,
                    indirect: false,
                    index: Index::PageZero,
                    disp: 0o17,
                }
                .encode()
            ),
            "LDA 0, 0o17"
        );
        assert_eq!(
            disassemble(
                Instr::Mem {
                    func: MemFn::Jmp,
                    indirect: true,
                    index: Index::PcRelative,
                    disp: 0xFE, // -2
                }
                .encode()
            ),
            "JMP @.-2"
        );
        let s = disassemble(
            Instr::Alu {
                src: 1,
                dst: 2,
                op: AluOp::Sub,
                shift: Shift::None,
                carry: CarryCtl::Zero,
                no_load: true,
                skip: SkipTest::ResultZero,
            }
            .encode(),
        );
        assert_eq!(s, "SUBZ# 1, 2, SZR");
    }
}
