//! The teletype-style display device.
//!
//! The real Alto had a bitmapped display driven by microcode; the system's
//! *display streams* (§5) simulated a teletype terminal on it. We model the
//! terminal directly: a character sink with a visible screen buffer that
//! examples print and tests assert on.

/// Display columns.
pub const COLUMNS: usize = 80;
/// Display rows.
pub const ROWS: usize = 24;

/// A teletype-style display: characters accumulate, lines scroll.
#[derive(Debug)]
pub struct Teletype {
    rows: Vec<String>,
    /// Everything ever printed (for tests).
    transcript: String,
}

impl Default for Teletype {
    fn default() -> Self {
        Teletype::new()
    }
}

impl Teletype {
    /// A blank screen.
    pub fn new() -> Teletype {
        Teletype {
            rows: vec![String::new()],
            transcript: String::new(),
        }
    }

    /// Prints one character (`\n` starts a new line; the screen scrolls
    /// after [`ROWS`] lines; lines wrap at [`COLUMNS`]).
    pub fn put_char(&mut self, c: char) {
        self.transcript.push(c);
        if c == '\n' {
            self.rows.push(String::new());
        } else {
            if self.rows.last().map_or(0, |r| r.chars().count()) >= COLUMNS {
                self.rows.push(String::new());
            }
            self.rows.last_mut().expect("at least one row").push(c);
        }
        while self.rows.len() > ROWS {
            self.rows.remove(0);
        }
    }

    /// Prints a string.
    pub fn put_str(&mut self, s: &str) {
        for c in s.chars() {
            self.put_char(c);
        }
    }

    /// The visible screen contents, one string per row.
    pub fn screen(&self) -> &[String] {
        &self.rows
    }

    /// Everything printed since construction.
    pub fn transcript(&self) -> &str {
        &self.transcript
    }

    /// Clears the screen (the transcript is kept).
    pub fn clear(&mut self) {
        self.rows = vec![String::new()];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characters_accumulate() {
        let mut t = Teletype::new();
        t.put_str("hello\nworld");
        assert_eq!(t.screen(), ["hello".to_string(), "world".to_string()]);
        assert_eq!(t.transcript(), "hello\nworld");
    }

    #[test]
    fn long_lines_wrap() {
        let mut t = Teletype::new();
        t.put_str(&"x".repeat(COLUMNS + 5));
        assert_eq!(t.screen().len(), 2);
        assert_eq!(t.screen()[0].len(), COLUMNS);
        assert_eq!(t.screen()[1].len(), 5);
    }

    #[test]
    fn screen_scrolls_after_rows_lines() {
        let mut t = Teletype::new();
        for i in 0..(ROWS + 3) {
            t.put_str(&format!("line {i}\n"));
        }
        assert_eq!(t.screen().len(), ROWS);
        assert_eq!(t.screen()[0], format!("line {}", 4));
        // The transcript keeps everything.
        assert!(t.transcript().contains("line 0"));
    }

    #[test]
    fn clear_resets_screen_not_transcript() {
        let mut t = Teletype::new();
        t.put_str("gone");
        t.clear();
        assert_eq!(t.screen(), [String::new()]);
        assert_eq!(t.transcript(), "gone");
    }
}
