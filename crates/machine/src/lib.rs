//! The simulated Alto machine (§2).
//!
//! "A small computer called the Alto, which has a 16-bit processor, 64k
//! words of 800 ns memory … The processor executes an instruction set that
//! supports BCPL, including special instructions for procedure calls and
//! returns." The Alto's emulated instruction set was an extension of the
//! Data General Nova's; this crate implements a faithful Nova-like CPU:
//!
//! * memory-reference instructions `JMP/JSR/ISZ/DSZ/LDA/STA` with page-zero,
//!   PC-relative and AC2/AC3-relative addressing, one level of indirection,
//!   and the auto-increment/decrement locations `020–037`;
//! * two-accumulator ALU instructions with carry control, shifts, no-load
//!   and skip tests (`COM/NEG/MOV/INC/ADC/SUB/ADD/AND`);
//! * the I/O class repurposed as the **trap** interface through which
//!   programs invoke operating-system procedures (§5.1's loader binds OS
//!   procedure addresses into user code via fixup tables; each procedure's
//!   stub executes a trap).
//!
//! The crate also provides the two-process structure of §2: an
//! interrupt-driven keyboard device that delivers type-ahead between
//! instructions, a teletype display device, byte-exact machine-state
//! snapshots (the substance of `OutLoad`/`InLoad`, §4.1), an assembler that
//! emits loadable code files with fixup tables, and a disassembler.
//!
//! Every instruction charges its memory cycles (800 ns each) to the shared
//! simulated clock.

#![forbid(unsafe_code)]

pub mod asm;
pub mod codefile;
pub mod cpu;
pub mod display;
pub mod errors;
pub mod instr;
pub mod keyboard;
pub mod state;

pub use asm::assemble;
pub use codefile::{CodeFile, Fixup};
pub use cpu::{Machine, Step};
pub use display::Teletype;
pub use errors::MachineError;
pub use instr::{disassemble, Instr};
pub use keyboard::{KeyEvent, Keyboard};
pub use state::MachineState;

/// Internal trap codes handled by the machine itself.
pub mod traps {
    /// Halt the machine.
    pub const HALT: u16 = 0;
    /// Enable interrupts.
    pub const INTEN: u16 = 1;
    /// Disable interrupts.
    pub const INTDS: u16 = 2;
    /// Return from interrupt (restores the PC saved at location 0 and
    /// re-enables interrupts).
    pub const RETI: u16 = 3;
    /// Read one struck key from the keyboard device into AC0 (0xFFFF if
    /// none) — the device access a machine-code keyboard ISR needs (§2).
    pub const KBDGET: u16 = 4;
    /// First trap code delivered to the operating system.
    pub const OS_BASE: u16 = 8;
}
