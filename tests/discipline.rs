//! Mutation self-test for the label-discipline checker (static + runtime).
//!
//! The checker is only trustworthy if it demonstrably *fires*: each test
//! here seeds a §3.3 violation — a write without a check, a stale hint
//! consumed unverified, a parked dirty page dropped — and asserts that the
//! static pass (`xtask::lint_sources`) and the runtime auditor
//! (`DiskDrive::enable_audit`) both catch their half of it. The
//! interprocedural pass (`xtask::analyze_sources`) gets the same treatment
//! with mutations only visible across call edges — an indirect raw op, a
//! swallowed error, hash-order iteration, an opcode nobody answers. The
//! real tree must stay clean under all the rules, and the auditor must cost
//! zero *simulated* time, which the last test checks as exact clock
//! equality.

use alto::disk::{
    Action, AuditRule, DiskAddress, DiskDrive, DiskModel, Label, SectorBuf, SectorOp, UnparkOutcome,
};
use alto::fs::{dir, FileSystem};
use alto::sim::{SimClock, Trace};
use alto::streams::{DiskByteStream, Stream};

fn audited_drive() -> (DiskDrive, alto::disk::Auditor) {
    let mut drive =
        DiskDrive::with_formatted_pack(SimClock::new(), Trace::new(), DiskModel::Diablo31, 1);
    // `enable_audit` installs a fresh non-strict auditor (replacing any
    // strict one the ALTO_AUDIT environment variable may have installed),
    // so the seeded violations below record instead of panicking.
    let aud = drive.enable_audit();
    (drive, aud)
}

fn live_label(page: u16) -> Label {
    Label {
        fid: [21, 42],
        version: 1,
        page_number: page,
        length: 512,
        next: DiskAddress::NIL,
        prev: DiskAddress::NIL,
    }
}

// --- Mutation 1: a value write with no label check in the sector visit. ---
// Static half: `raw-disk-op` (the only way to issue such an op from fs code
// is to bypass the fs::page wrappers). Runtime half: `check-before-write`.

#[test]
fn runtime_catches_write_without_check() {
    let (mut drive, aud) = audited_drive();
    let unchecked_write = SectorOp {
        header: Action::Check,
        label: Action::Read,
        value: Action::Write,
    };
    let mut buf = SectorBuf::zeroed();
    alto::disk::Disk::do_op(&mut drive, DiskAddress(10), unchecked_write, &mut buf).unwrap();
    let violations = aud.violations();
    assert!(
        violations
            .iter()
            .any(|v| v.rule == AuditRule::CheckBeforeWrite),
        "auditor must flag a value write whose label action is a plain read, got {violations:?}"
    );
}

#[test]
fn static_catches_raw_disk_op() {
    let seeded = r#"
fn smuggle_a_write(&mut self, da: DiskAddress, buf: &mut SectorBuf) {
    self.disk.do_op(da, SectorOp::WRITE, buf).ok();
}
"#;
    let report = xtask::lint_sources(&[("crates/fs/src/mutant.rs", seeded)]);
    assert!(
        report.violations.iter().any(|v| v.rule == "raw-disk-op"),
        "lint must flag a raw do_op outside fs::page, got {:?}",
        report.violations
    );
}

// --- Mutation 2: a hint trusted without re-verification. ---
// Static half: `hint-reverify`. Runtime half: `unverified-label-write` (a
// label rewrite that skipped the check pass is exactly what trusting a
// stale hint produces at the drive).

#[test]
fn runtime_catches_label_write_without_check_pass() {
    let (mut drive, aud) = audited_drive();
    // The two-pass allocate protocol is CHECK_LABEL then WRITE_LABEL; going
    // straight to WRITE_LABEL trusts a hint that the sector is still free.
    let mut buf = SectorBuf::with_label(live_label(1));
    alto::disk::Disk::do_op(&mut drive, DiskAddress(11), SectorOp::WRITE_LABEL, &mut buf).unwrap();
    let violations = aud.violations();
    assert!(
        violations
            .iter()
            .any(|v| v.rule == AuditRule::UnverifiedLabelWrite),
        "auditor must flag a label rewrite with no prior check pass, got {violations:?}"
    );
}

#[test]
fn runtime_accepts_the_two_pass_protocol() {
    let (mut drive, aud) = audited_drive();
    let mut buf = SectorBuf::with_label(Label::FREE);
    alto::disk::Disk::do_op(&mut drive, DiskAddress(11), SectorOp::CHECK_LABEL, &mut buf).unwrap();
    let mut buf = SectorBuf::with_label(live_label(1));
    alto::disk::Disk::do_op(&mut drive, DiskAddress(11), SectorOp::WRITE_LABEL, &mut buf).unwrap();
    assert_eq!(
        aud.violation_count(),
        0,
        "check pass then label write is the sanctioned §3.3 sequence: {:?}",
        aud.violations()
    );
}

#[test]
fn static_catches_unverified_hint_use() {
    let seeded = r#"
fn stale_hint_shortcut(&mut self, name: &str) -> Option<DiskAddress> {
    let hit = self.cache.lookup_name(self.root, name)?;
    Some(hit.da)
}
"#;
    let report = xtask::lint_sources(&[("crates/fs/src/mutant.rs", seeded)]);
    assert!(
        report.violations.iter().any(|v| v.rule == "hint-reverify"),
        "lint must flag a hint consumed without re-verification, got {:?}",
        report.violations
    );
}

// --- Mutation 3: a parked dirty page dropped without reaching the medium. ---
// Static half: `diskerror-unwrap` (the way a drain error turns into silent
// data loss is an unwrap/ok() swallowing the failed write). Runtime half:
// `park-accounting`.

#[test]
fn runtime_catches_dropped_parked_page() {
    let (mut drive, aud) = audited_drive();
    let da = DiskAddress(12);
    alto::disk::Disk::note_park(&mut drive, da, 3);
    assert_eq!(aud.parked_outstanding(), 1);
    alto::disk::Disk::note_unpark(&mut drive, da, 3, UnparkOutcome::Dropped);
    let violations = aud.violations();
    assert!(
        violations
            .iter()
            .any(|v| v.rule == AuditRule::ParkAccounting),
        "auditor must flag a parked page discarded without a write, got {violations:?}"
    );
    assert_eq!(aud.parked_outstanding(), 0);
}

#[test]
fn runtime_catches_uncovered_drain_claim() {
    let (mut drive, aud) = audited_drive();
    let da = DiskAddress(13);
    alto::disk::Disk::note_park(&mut drive, da, 4);
    // Claiming the page drained when no write to `da` was ever observed is
    // the lying-buffer variant of the same data loss.
    alto::disk::Disk::note_unpark(&mut drive, da, 4, UnparkOutcome::Drained);
    assert!(aud
        .violations()
        .iter()
        .any(|v| v.rule == AuditRule::ParkAccounting));
}

#[test]
fn static_catches_unwrap_on_disk_paths() {
    let seeded = r#"
fn drop_failed_drain(&mut self) {
    self.drain_batch().unwrap();
}
"#;
    let report = xtask::lint_sources(&[("crates/streams/src/mutant.rs", seeded)]);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.rule == "diskerror-unwrap"),
        "lint must flag unwrap on a fallible disk path, got {:?}",
        report.violations
    );
}

// --- The remaining static rules also still fire. ---

#[test]
fn static_catches_clock_mutation_outside_disk() {
    let seeded = r#"
fn cheat_time(&mut self) {
    self.clock.advance(SimTime::from_millis(5));
}
"#;
    let report = xtask::lint_sources(&[("crates/core/src/mutant.rs", seeded)]);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.rule == "clock-discipline"),
        "lint must flag clock mutation outside crates/disk and crates/sim, got {:?}",
        report.violations
    );
}

#[test]
fn static_catches_stale_allow() {
    let seeded = "// lint: allow(raw-disk-op) — left over from a refactor\nfn innocent() {}\n";
    let report = xtask::lint_sources(&[("crates/fs/src/mutant.rs", seeded)]);
    assert!(
        report.violations.iter().any(|v| v.rule == "stale-allow"),
        "lint must flag an allow annotation that suppresses nothing, got {:?}",
        report.violations
    );
}

#[test]
fn static_annotated_seed_is_suppressed_and_recorded() {
    let seeded = r#"
fn drop_failed_drain(&mut self) {
    // lint: allow(diskerror-unwrap) — seeded exception for the self-test
    self.drain_batch().unwrap();
}
"#;
    let report = xtask::lint_sources(&[("crates/streams/src/mutant.rs", seeded)]);
    assert!(report.is_clean(), "got {:?}", report.violations);
    assert_eq!(report.allowed.len(), 1);
    assert_eq!(report.allowed[0].rule, "diskerror-unwrap");
}

// --- The real tree is clean under the same rules. ---

#[test]
fn workspace_tree_passes_the_lint() {
    let report = xtask::lint_workspace(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace sources must be readable");
    assert!(
        report.is_clean(),
        "`cargo xtask lint` must pass on the tree:\n{}",
        report
            .violations
            .iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_checked > 50, "the walk found the workspace");
}

// --- The interprocedural rules (`cargo xtask analyze`) also fire. Each
// mutation here is invisible to the per-function lint — the violation only
// exists across a call edge or across the whole protocol surface. ---

#[test]
fn analyze_catches_raw_op_reached_through_a_helper() {
    // The helper contains the raw op; the caller never mentions do_op at
    // all, so only the call-graph pass can see that it reaches one.
    let seeded = r#"
fn helper_with_raw_op(&mut self, da: DiskAddress, buf: &mut SectorBuf) {
    self.disk.do_op(da, SectorOp::WRITE, buf).expect("write");
}

fn innocent_looking_caller(&mut self, da: DiskAddress) {
    let mut buf = SectorBuf::zeroed();
    self.helper_with_raw_op(da, &mut buf);
}
"#;
    let report = xtask::analyze_sources(&[("crates/fs/src/mutant.rs", seeded)]);
    assert!(
        report.violations.iter().any(|v| {
            v.rule == "raw-disk-op-transitive" && v.message.contains("innocent_looking_caller")
        }),
        "analyze must flag the caller that reaches a raw op indirectly, got {:?}",
        report.violations
    );
}

#[test]
fn analyze_catches_swallowed_disk_error() {
    let seeded = r#"
fn forgetful_flush(&mut self, file: FileFullName, bytes: &[u8]) {
    let _ = self.fs.write_file(file, bytes);
}
"#;
    let report = xtask::analyze_sources(&[("crates/fs/src/mutant.rs", seeded)]);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.rule == "error-path-discard"),
        "analyze must flag a DiskError discarded via `let _ =`, got {:?}",
        report.violations
    );
}

#[test]
fn analyze_catches_swallowed_send_result() {
    let seeded = r#"
fn fire_and_forget(&mut self, ether: &mut Ether, reply: Packet) {
    ether.send(reply).ok();
}
"#;
    let report = xtask::analyze_sources(&[("crates/net/src/mutant.rs", seeded)]);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.rule == "error-path-discard"),
        "analyze must flag a send Result swallowed via `.ok()`, got {:?}",
        report.violations
    );
}

#[test]
fn analyze_catches_hashmap_iteration_on_a_planning_path() {
    let seeded = r#"
fn plan_batches(&mut self, pending: &HashMap<u16, Request>) -> Vec<Request> {
    let mut plan = Vec::new();
    for (_seq, req) in pending.iter() {
        plan.push(req.clone());
    }
    plan
}
"#;
    let report = xtask::analyze_sources(&[("crates/net/src/mutant.rs", seeded)]);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.rule == "hashmap-iteration"),
        "analyze must flag hash-order iteration in batch planning, got {:?}",
        report.violations
    );
}

#[test]
fn analyze_catches_unhandled_opcode() {
    let seeded = r#"
pub const SHUTDOWN_REQUEST: PacketType = PacketType::Other(0x70);
"#;
    let report = xtask::analyze_sources(&[("crates/net/src/mutant.rs", seeded)]);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.rule == "protocol-totality" && v.message.contains("no dispatch site")),
        "analyze must flag a request opcode nobody dispatches, got {:?}",
        report.violations
    );
}

#[test]
fn analyze_catches_dispatched_request_that_never_replies() {
    let seeded = r#"
pub const PING_REQUEST: PacketType = PacketType::Other(0x71);

fn dispatch(&mut self, p: &Packet) {
    if p.ptype == PING_REQUEST {
        self.stats.pings += 1;
    }
}
"#;
    let report = xtask::analyze_sources(&[("crates/net/src/mutant.rs", seeded)]);
    assert!(
        report.violations.iter().any(
            |v| v.rule == "protocol-totality" && v.message.contains("never reaches a `.send(`")
        ),
        "analyze must flag a handled request with no reply path, got {:?}",
        report.violations
    );
}

#[test]
fn analyze_catches_thread_outside_disk() {
    let seeded = r#"
fn sneak_parallelism(&mut self) {
    let handle = thread::spawn(|| expensive_scan());
    handle.join().expect("join");
}
"#;
    let report = xtask::analyze_sources(&[("crates/fs/src/mutant.rs", seeded)]);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.rule == "thread-discipline"),
        "analyze must flag host threads outside crates/disk, got {:?}",
        report.violations
    );
}

#[test]
fn analyze_catches_clock_mutation_reached_through_a_helper() {
    let seeded = r#"
fn skip_ahead(&mut self) {
    self.clock.advance(SimTime::from_millis(5));
}

fn tick_looking_wrapper(&mut self) {
    self.skip_ahead();
}
"#;
    let report = xtask::analyze_sources(&[("crates/core/src/mutant.rs", seeded)]);
    assert!(
        report.violations.iter().any(|v| {
            v.rule == "clock-discipline-transitive" && v.message.contains("tick_looking_wrapper")
        }),
        "analyze must flag the caller that reaches a clock write, got {:?}",
        report.violations
    );
}

#[test]
fn analyze_allow_on_the_direct_site_sanctions_the_callers() {
    // Annotating the raw op itself (the base `raw-disk-op` escape hatch)
    // vouches for the whole path: the transitive rule must stay quiet for
    // the helper's callers instead of demanding a second annotation.
    let seeded = r#"
fn helper_with_raw_op(&mut self, da: DiskAddress, buf: &mut SectorBuf) {
    // lint: allow(raw-disk-op) — seeded exception for the self-test
    self.disk.do_op(da, SectorOp::WRITE, buf).expect("write");
}

fn innocent_looking_caller(&mut self, da: DiskAddress) {
    let mut buf = SectorBuf::zeroed();
    self.helper_with_raw_op(da, &mut buf);
}
"#;
    let report = xtask::analyze_sources(&[("crates/fs/src/mutant.rs", seeded)]);
    assert!(
        !report
            .violations
            .iter()
            .any(|v| v.rule == "raw-disk-op-transitive"),
        "an allow on the direct site must sanction its callers, got {:?}",
        report.violations
    );
}

#[test]
fn analyze_annotated_seed_is_suppressed_and_recorded() {
    let seeded = r#"
fn forgetful_flush(&mut self, file: FileFullName, bytes: &[u8]) {
    // lint: allow(error-path-discard) — seeded exception for the self-test
    let _ = self.fs.write_file(file, bytes);
}
"#;
    let report = xtask::analyze_sources(&[("crates/fs/src/mutant.rs", seeded)]);
    assert!(report.is_clean(), "got {:?}", report.violations);
    assert_eq!(report.allowed.len(), 1);
    assert_eq!(report.allowed[0].rule, "error-path-discard");
}

// --- ...and the real tree is clean under the interprocedural rules too. ---

#[test]
fn workspace_tree_passes_the_analyze_pass() {
    let report = xtask::analyze_workspace(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace sources must be readable");
    assert!(
        report.is_clean(),
        "`cargo xtask analyze` must pass on the tree:\n{}",
        report
            .violations
            .iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_checked > 50, "the walk found the workspace");
}

// --- A realistic workload is violation-free under the auditor... ---

fn run_stream_workload(fs: &mut FileSystem<DiskDrive>) {
    let root = fs.root_dir();
    let f = dir::create_named_file(fs, root, "audit.dat").unwrap();
    let bytes: Vec<u8> = (0..8 * 512u32).map(|i| (i % 249) as u8).collect();
    let mut s = DiskByteStream::open(fs, f).unwrap();
    for &b in &bytes {
        s.put_byte(fs, b).unwrap();
    }
    s.close(fs).unwrap();
    let mut s = DiskByteStream::open(fs, f).unwrap();
    let mut back = vec![0u8; bytes.len()];
    s.read_bytes(fs, &mut back).unwrap();
    s.close(fs).unwrap();
    assert_eq!(back, bytes);
}

#[test]
fn audited_workload_is_violation_free() {
    let (drive, aud) = audited_drive();
    let mut fs = FileSystem::format(drive).unwrap();
    run_stream_workload(&mut fs);
    assert_eq!(
        aud.violation_count(),
        0,
        "write-behind + readahead workload must satisfy §3.3: {:?}",
        aud.violations()
    );
    assert_eq!(
        aud.parked_outstanding(),
        0,
        "every parked page must have drained by close"
    );
    assert!(aud.ops_observed() > 50, "the auditor actually mirrored I/O");
}

// --- ...and the auditor costs zero simulated time. ---

#[test]
fn auditor_adds_no_simulated_time() {
    let run = |audit: bool| {
        let mut drive =
            DiskDrive::with_formatted_pack(SimClock::new(), Trace::new(), DiskModel::Diablo31, 1);
        if audit {
            drive.enable_audit();
        } else {
            alto::disk::Disk::set_audit_enabled(&mut drive, false);
        }
        let mut fs = FileSystem::format(drive).unwrap();
        run_stream_workload(&mut fs);
        alto::disk::Disk::clock(fs.disk()).now()
    };
    let (with_audit, without_audit) = (run(true), run(false));
    assert_eq!(
        with_audit, without_audit,
        "the auditor must be invisible to the timing model (≤2% overhead \
         criterion, met exactly: the simulated clocks are bit-identical)"
    );
}
