//! End-to-end integration: the whole stack from keyboard to platter.

use alto::os::exec::ExecExit;
use alto::os::swap::MESSAGE_ADDR;
use alto::prelude::*;

/// A user session writes a file via a loaded program; the machine crashes;
/// after scavenging and a reboot the file is intact and the system works.
#[test]
fn survive_a_full_crash_cycle() {
    let mut os = alto::fresh_alto();

    // A program that writes its output through stream system calls.
    os.store_program(
        "writer.run",
        r#"
        lda 0, namep
        jsr @openw
        sta 0, handle
        lda 2, datap
        lda 1, lenv
loop:   lda 1, 0,2          ; AC1 = next byte value
        lda 0, handle
        jsr @puts
        inc 2, 2
        dsz lenv
        jmp loop
        lda 0, handle
        jsr @closes
        halt
openw:  .fixup "OpenWrite"
puts:   .fixup "Puts"
closes: .fixup "Closes"
handle: .word 0
lenv:   .word 4
namep:  .word name
datap:  .word data
data:   .word 'D'
        .word 'A'
        .word 'T'
        .word 'A'
name:   .str "output.dat"
        "#,
    )
    .unwrap();

    // The user runs it from the Executive.
    os.type_text("writer.run\nquit\n");
    assert_eq!(os.run_executive(10).unwrap(), ExecExit::Quit);

    // Verify the program's output.
    let root = os.fs.root_dir();
    let f = dir::lookup(&mut os.fs, root, "output.dat")
        .unwrap()
        .unwrap();
    assert_eq!(os.fs.read_file(f).unwrap(), b"DATA");

    // Crash: the allocation map on disk is stale.
    let clock = os.machine.clock().clone();
    let disk = os.fs.crash();

    // Scavenge and reboot.
    let (fs, report) = Scavenger::rebuild(disk).unwrap();
    assert_eq!(report.headless_pages_freed, 0);
    let machine = Machine::new(clock, Trace::new());
    let mut os = AltoOs::assemble(machine, fs);

    // Everything still there; system still fully functional.
    let root = os.fs.root_dir();
    let f = dir::lookup(&mut os.fs, root, "output.dat")
        .unwrap()
        .unwrap();
    assert_eq!(os.fs.read_file(f).unwrap(), b"DATA");
    os.type_text("writer.run\nquit\n");
    assert_eq!(os.run_executive(10).unwrap(), ExecExit::Quit);
}

/// The §4.1 coroutine linkage between two *programs* (not just states):
/// each world passes a message naming the file to resume.
#[test]
fn coroutine_programs_exchange_messages() {
    let mut os = alto::fresh_alto();
    let a = os.create_state_file("A.state").unwrap();
    let b = os.create_state_file("B.state").unwrap();

    // World A: machine with a recognizable memory tattoo.
    os.machine.mem.write(0o4000, 0xAAAA);
    os.machine.ac[3] = 0xA;
    os.out_load(a).unwrap();

    // World B.
    os.machine.mem.write(0o4000, 0xBBBB);
    os.machine.ac[3] = 0xB;
    os.out_load(b).unwrap();

    // Ping-pong with messages carrying a round counter.
    let mut msg = [0u16; MESSAGE_WORDS];
    for round in 1..=5u16 {
        msg[0] = round;
        os.in_load(a, &msg).unwrap();
        assert_eq!(os.machine.ac[3], 0xA);
        assert_eq!(os.machine.mem.read(0o4000), 0xAAAA);
        assert_eq!(os.machine.mem.read(MESSAGE_ADDR), round);
        os.out_load(a).unwrap();

        os.in_load(b, &msg).unwrap();
        assert_eq!(os.machine.ac[3], 0xB);
        assert_eq!(os.machine.mem.read(0o4000), 0xBBBB);
        os.out_load(b).unwrap();
    }
}

/// Junta as a loaded program uses it: free the upper levels, load a huge
/// overlay into the reclaimed space, then CounterJunta back to a fully
/// working system.
#[test]
fn junta_overlay_counter_junta_cycle() {
    let mut os = alto::fresh_alto();
    let full_base = os.levels().resident_base();

    // A big program cannot load while the whole system is resident.
    let big = format!("halt\n.blk {}\n", 60_000);
    os.store_program("big.run", &big).unwrap();
    assert!(os.run_program("big.run", 100).is_err());

    // Junta to level 4 (keeping OutLoad, the keyboard buffer, hints, and
    // the BCPL runtime), then the overlay fits.
    let freed = os.junta(4).unwrap();
    assert!(freed > 6_000);
    assert!(os.levels().resident_base() > full_base);
    os.run_program("big.run", 100).unwrap();

    // Stream services are gone…
    assert!(os.open_read("big.run").is_ok());
    assert!(os
        .handle_syscall(alto::os::syscalls::SysCall::Gets.code(), 0)
        .is_err());

    // …until CounterJunta restores the world.
    os.counter_junta();
    assert_eq!(os.levels().resident(), 13);
    os.type_text("ls\nquit\n");
    assert_eq!(os.run_executive(5).unwrap(), ExecExit::Quit);
}

/// The boot button works even after the OS state evolves: install, run
/// programs, reinstall, boot.
#[test]
fn boot_file_tracks_the_installed_world() {
    let mut os = alto::fresh_alto();
    os.machine.ac[2] = 1111;
    os.install_boot_file().unwrap();

    os.machine.ac[2] = 2222;
    os.install_boot_file().unwrap(); // in-place rewrite

    os.machine.ac[2] = 0;
    os.bootstrap().unwrap();
    assert_eq!(os.machine.ac[2], 2222);
}

/// Type-ahead really does cross program boundaries: keys struck while one
/// program runs feed the next program's input.
#[test]
fn type_ahead_crosses_program_boundaries() {
    let mut os = alto::fresh_alto();
    // A program that reads two chars via GetChar and stores them.
    os.store_program(
        "reader.run",
        r#"
loop1:  jsr @getchar
        lda 1, eof
        sub# 1, 0, snr
        jmp loop1
        sta 0, 0o500
loop2:  jsr @getchar
        lda 1, eof
        sub# 1, 0, snr
        jmp loop2
        sta 0, 0o501
        halt
getchar: .fixup "GetChar"
eof:    .word 0xFFFF
        "#,
    )
    .unwrap();
    // The user types ahead *before* the program even loads.
    os.type_text("xy");
    os.machine.clock().advance(SimTime::from_millis(50));
    os.service_keyboard();
    os.run_program("reader.run", 1_000_000).unwrap();
    assert_eq!(os.machine.mem.read(0o500), b'x' as u16);
    assert_eq!(os.machine.mem.read(0o501), b'y' as u16);
}

/// The display pipeline: VM program -> trap -> teletype -> screen rows.
#[test]
fn display_pipeline_end_to_end() {
    let mut os = alto::fresh_alto();
    os.store_program(
        "lines.run",
        r#"
        lda 2, tblp
        lda 1, lenv
loop:   lda 0, 0,2
        jsr @putchar
        inc 2, 2
        dsz lenv
        jmp loop
        halt
putchar: .fixup "PutChar"
lenv:   .word 8
tblp:   .word tbl
tbl:    .word 'o'
        .word 'n'
        .word 'e'
        .word 10
        .word 't'
        .word 'w'
        .word 'o'
        .word 10
        "#,
    )
    .unwrap();
    os.run_program("lines.run", 100_000).unwrap();
    let screen = os.machine.display.screen();
    assert_eq!(screen[0], "one");
    assert_eq!(screen[1], "two");
}
