//! Model-based testing: arbitrary operation sequences against a trivial
//! in-memory model. After every operation — including crashes, scavenges
//! and compactions — the file system must agree with the model exactly.

use alto::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Create(usize),
    Write(usize, Vec<u8>),
    Delete(usize),
    Rename(usize, usize),
    Scavenge,
    CrashAndScavenge,
    Compact,
}

const NAMES: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..NAMES.len()).prop_map(Op::Create),
        4 => ((0..NAMES.len()), proptest::collection::vec(any::<u8>(), 0..2000))
            .prop_map(|(i, b)| Op::Write(i, b)),
        2 => (0..NAMES.len()).prop_map(Op::Delete),
        1 => ((0..NAMES.len()), (0..NAMES.len())).prop_map(|(a, b)| Op::Rename(a, b)),
        1 => Just(Op::Scavenge),
        1 => Just(Op::CrashAndScavenge),
        1 => Just(Op::Compact),
    ]
}

fn check_agreement(
    fs: &mut FileSystem<DiskDrive>,
    model: &BTreeMap<String, Vec<u8>>,
) -> Result<(), TestCaseError> {
    let root = fs.root_dir();
    for name in NAMES {
        let on_disk = dir::lookup(fs, root, name).unwrap();
        match model.get(name) {
            Some(want) => {
                let f = on_disk.ok_or_else(|| {
                    TestCaseError::fail(format!("{name} missing from the file system"))
                })?;
                let got = fs.read_file(f).unwrap();
                prop_assert_eq!(&got, want, "{} contents differ", name);
            }
            None => {
                prop_assert!(on_disk.is_none(), "{} should not exist", name);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn file_system_matches_the_model(ops in proptest::collection::vec(op_strategy(), 1..25)) {
        let clock = SimClock::new();
        let drive = DiskDrive::with_formatted_pack(
            clock.clone(), Trace::new(), DiskModel::Diablo31, 1);
        let mut fs = FileSystem::format(drive).unwrap();
        let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Create(i) => {
                    let name = NAMES[i];
                    let root = fs.root_dir();
                    if model.contains_key(name) {
                        continue;
                    }
                    dir::create_named_file(&mut fs, root, name).unwrap();
                    model.insert(name.to_string(), Vec::new());
                }
                Op::Write(i, bytes) => {
                    let name = NAMES[i];
                    if !model.contains_key(name) {
                        continue;
                    }
                    let root = fs.root_dir();
                    let f = dir::lookup(&mut fs, root, name).unwrap().unwrap();
                    fs.write_file(f, &bytes).unwrap();
                    model.insert(name.to_string(), bytes);
                }
                Op::Delete(i) => {
                    let name = NAMES[i];
                    if !model.contains_key(name) {
                        continue;
                    }
                    let root = fs.root_dir();
                    let f = dir::remove(&mut fs, root, name).unwrap().unwrap();
                    fs.delete_file(f).unwrap();
                    model.remove(name);
                }
                Op::Rename(a, b) => {
                    let (from, to) = (NAMES[a], NAMES[b]);
                    if !model.contains_key(from) || model.contains_key(to) || a == b {
                        continue;
                    }
                    let root = fs.root_dir();
                    let f = dir::remove(&mut fs, root, from).unwrap().unwrap();
                    dir::insert(&mut fs, root, to, f).unwrap();
                    let v = model.remove(from).unwrap();
                    model.insert(to.to_string(), v);
                }
                Op::Scavenge => {
                    let disk = fs.unmount().unwrap();
                    let (fs2, _) = Scavenger::rebuild(disk).unwrap();
                    fs = fs2;
                }
                Op::CrashAndScavenge => {
                    let disk = fs.crash();
                    let (fs2, _) = Scavenger::rebuild(disk).unwrap();
                    fs = fs2;
                }
                Op::Compact => {
                    Compactor::run(&mut fs).unwrap();
                }
            }
            check_agreement(&mut fs, &model)?;
        }

        // Final invariant: the allocation map agrees with the labels for
        // every free page (no lost pages after any of this).
        let disk = fs.unmount().unwrap();
        let (fs, report) = Scavenger::rebuild(disk).unwrap();
        prop_assert_eq!(report.headless_pages_freed, 0);
        prop_assert_eq!(report.duplicate_pages_freed, 0);
        let mut fs = fs;
        check_agreement(&mut fs, &model)?;
    }
}
