//! Model-based testing: randomized operation sequences against a trivial
//! in-memory model. After every operation — including crashes, scavenges
//! and compactions — the file system must agree with the model exactly.
//! Driven by the in-tree deterministic PRNG so the suite runs offline.

use alto::prelude::*;
use alto::sim::SplitMix64;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Create(usize),
    Write(usize, Vec<u8>),
    Delete(usize),
    Rename(usize, usize),
    Scavenge,
    CrashAndScavenge,
    Compact,
}

const NAMES: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];

fn random_op(rng: &mut SplitMix64) -> Op {
    // Weights mirror the original strategy: 3 create, 4 write, 2 delete,
    // 1 rename, 1 scavenge, 1 crash+scavenge, 1 compact (total 13).
    match rng.next_below(13) {
        0..=2 => Op::Create(rng.next_below(NAMES.len() as u64) as usize),
        3..=6 => {
            let i = rng.next_below(NAMES.len() as u64) as usize;
            let len = rng.next_below(2000) as usize;
            let bytes = (0..len).map(|_| rng.next_u16() as u8).collect();
            Op::Write(i, bytes)
        }
        7..=8 => Op::Delete(rng.next_below(NAMES.len() as u64) as usize),
        9 => Op::Rename(
            rng.next_below(NAMES.len() as u64) as usize,
            rng.next_below(NAMES.len() as u64) as usize,
        ),
        10 => Op::Scavenge,
        11 => Op::CrashAndScavenge,
        _ => Op::Compact,
    }
}

fn check_agreement(fs: &mut FileSystem<DiskDrive>, model: &BTreeMap<String, Vec<u8>>) {
    let root = fs.root_dir();
    // First pass builds the name index (cold), second pass hits it (warm);
    // every cached answer must then agree with a fresh uncached scan.
    let cold: Vec<_> = NAMES
        .iter()
        .map(|name| dir::lookup(fs, root, name).unwrap())
        .collect();
    let warm: Vec<_> = NAMES
        .iter()
        .map(|name| dir::lookup(fs, root, name).unwrap())
        .collect();
    fs.set_hint_cache_enabled(false);
    let uncached: Vec<_> = NAMES
        .iter()
        .map(|name| dir::lookup(fs, root, name).unwrap())
        .collect();
    fs.set_hint_cache_enabled(true);
    for (i, name) in NAMES.iter().enumerate() {
        assert_eq!(
            cold[i], uncached[i],
            "{name}: cold cached lookup disagrees with uncached scan"
        );
        assert_eq!(
            warm[i], uncached[i],
            "{name}: warm cached lookup disagrees with uncached scan"
        );
        match model.get(*name) {
            Some(want) => {
                let f = warm[i].unwrap_or_else(|| panic!("{name} missing from the file system"));
                let got = fs.read_file(f).unwrap();
                assert_eq!(&got, want, "{name} contents differ");
            }
            None => {
                assert!(warm[i].is_none(), "{name} should not exist");
            }
        }
    }
}

#[test]
fn file_system_matches_the_model() {
    let mut rng = SplitMix64::new(0x0DE11);
    for _case in 0..24 {
        let clock = SimClock::new();
        let drive =
            DiskDrive::with_formatted_pack(clock.clone(), Trace::new(), DiskModel::Diablo31, 1);
        let mut fs = FileSystem::format(drive).unwrap();
        let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();

        let ops = 1 + rng.next_below(24);
        for _ in 0..ops {
            match random_op(&mut rng) {
                Op::Create(i) => {
                    let name = NAMES[i];
                    let root = fs.root_dir();
                    if model.contains_key(name) {
                        continue;
                    }
                    dir::create_named_file(&mut fs, root, name).unwrap();
                    model.insert(name.to_string(), Vec::new());
                }
                Op::Write(i, bytes) => {
                    let name = NAMES[i];
                    if !model.contains_key(name) {
                        continue;
                    }
                    let root = fs.root_dir();
                    let f = dir::lookup(&mut fs, root, name).unwrap().unwrap();
                    fs.write_file(f, &bytes).unwrap();
                    model.insert(name.to_string(), bytes);
                }
                Op::Delete(i) => {
                    let name = NAMES[i];
                    if !model.contains_key(name) {
                        continue;
                    }
                    let root = fs.root_dir();
                    let f = dir::remove(&mut fs, root, name).unwrap().unwrap();
                    fs.delete_file(f).unwrap();
                    model.remove(name);
                }
                Op::Rename(a, b) => {
                    let (from, to) = (NAMES[a], NAMES[b]);
                    if !model.contains_key(from) || model.contains_key(to) || a == b {
                        continue;
                    }
                    let root = fs.root_dir();
                    let f = dir::remove(&mut fs, root, from).unwrap().unwrap();
                    dir::insert(&mut fs, root, to, f).unwrap();
                    let v = model.remove(from).unwrap();
                    model.insert(to.to_string(), v);
                }
                Op::Scavenge => {
                    let disk = fs.unmount().unwrap();
                    let (fs2, _) = Scavenger::rebuild(disk).unwrap();
                    fs = fs2;
                }
                Op::CrashAndScavenge => {
                    let disk = fs.crash();
                    let (fs2, _) = Scavenger::rebuild(disk).unwrap();
                    fs = fs2;
                }
                Op::Compact => {
                    Compactor::run(&mut fs).unwrap();
                }
            }
            check_agreement(&mut fs, &model);
        }

        // Final invariant: the allocation map agrees with the labels for
        // every free page (no lost pages after any of this).
        let disk = fs.unmount().unwrap();
        let (fs, report) = Scavenger::rebuild(disk).unwrap();
        assert_eq!(report.headless_pages_freed, 0);
        assert_eq!(report.duplicate_pages_freed, 0);
        let mut fs = fs;
        check_agreement(&mut fs, &model);
    }
}
