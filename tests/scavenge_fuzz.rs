//! Scavenger fuzzing: the Scavenger must produce a working file system
//! from *any* pack state — including packs whose labels are pure noise.
//!
//! "A scavenging procedure is provided to reconstruct the state of the
//! file system from whatever fragmented state it may have fallen into.
//! The requirements of this procedure govern much of the system design"
//! (§3). These tests hold it to the "whatever" part. Randomness comes
//! from the in-tree deterministic PRNG so the suite runs offline.

use alto::prelude::*;
use alto::sim::SplitMix64;

/// After any scavenge the system must be fully usable: mountable, able to
/// create/write/read/delete, and a second scavenge must be a fixed point.
fn assert_usable(disk: DiskDrive) {
    let (mut fs, _report) = Scavenger::rebuild(disk).expect("scavenge must succeed");
    let root = fs.root_dir();
    let f = dir::create_named_file(&mut fs, root, "post-fuzz.dat").expect("create");
    fs.write_file(f, b"usable again").expect("write");
    assert_eq!(fs.read_file(f).expect("read"), b"usable again");

    // Remount from disk (the descriptor must be well-formed).
    let disk = fs.unmount().expect("unmount");
    let mut fs = FileSystem::mount(disk).expect("mount after scavenge");
    let root = fs.root_dir();
    let g = dir::lookup(&mut fs, root, "post-fuzz.dat")
        .unwrap()
        .unwrap();
    assert_eq!(fs.read_file(g).unwrap(), b"usable again");

    // Fixed point: a second scavenge finds nothing to repair.
    let disk = fs.unmount().unwrap();
    let (_, second) = Scavenger::rebuild(disk).unwrap();
    assert_eq!(second.links_repaired, 0, "second scavenge repaired links");
    assert_eq!(second.headless_pages_freed, 0);
    assert_eq!(second.duplicate_pages_freed, 0);
}

/// Random label noise over a healthy file system.
#[test]
fn scavenger_survives_label_noise() {
    let mut seeds = SplitMix64::new(0x5EED0);
    for _case in 0..6 {
        let seed = seeds.next_u64();
        let smashes = 1 + seeds.next_below(39) as usize;
        let clock = SimClock::new();
        let drive = DiskDrive::with_formatted_pack(clock, Trace::new(), DiskModel::Diablo31, 1);
        let mut fs = FileSystem::format(drive).unwrap();
        let root = fs.root_dir();
        let mut rng = SplitMix64::new(seed);
        for i in 0..6 {
            let f = dir::create_named_file(&mut fs, root, &format!("f{i}")).unwrap();
            let len = (rng.next_below(3000) + 1) as usize;
            fs.write_file(f, &vec![i as u8; len]).unwrap();
        }
        let total = fs.descriptor().bitmap.len() as u64;
        for _ in 0..smashes {
            let da = DiskAddress(rng.next_below(total) as u16);
            let pack = fs.disk_mut().pack_mut().unwrap();
            let sector = pack.sector_mut(da).unwrap();
            for w in &mut sector.label {
                *w = rng.next_u16();
            }
        }
        assert_usable(fs.crash());
    }
}

/// A pack of complete noise: every sector's label and data random.
#[test]
fn scavenger_survives_a_noise_pack() {
    let mut seeds = SplitMix64::new(0x01CE);
    for _case in 0..4 {
        let seed = seeds.next_u64();
        let clock = SimClock::new();
        let mut drive = DiskDrive::with_formatted_pack(clock, Trace::new(), DiskModel::Diablo31, 1);
        let mut rng = SplitMix64::new(seed);
        {
            let pack = drive.pack_mut().unwrap();
            let total = pack.geometry().sector_count();
            for i in 0..total {
                let sector = pack.sector_mut(DiskAddress(i as u16)).unwrap();
                for w in &mut sector.label {
                    *w = rng.next_u16();
                }
                for w in sector.data.iter_mut().take(8) {
                    *w = rng.next_u16();
                }
            }
        }
        assert_usable(drive);
    }
}

/// Random links: every live page's next/prev pointers scrambled.
#[test]
fn scavenger_survives_scrambled_links() {
    let mut seeds = SplitMix64::new(0x111C);
    for _case in 0..4 {
        let seed = seeds.next_u64();
        let clock = SimClock::new();
        let drive = DiskDrive::with_formatted_pack(clock, Trace::new(), DiskModel::Diablo31, 1);
        let mut fs = FileSystem::format(drive).unwrap();
        let root = fs.root_dir();
        let mut rng = SplitMix64::new(seed);
        let mut contents = Vec::new();
        for i in 0..5 {
            let name = format!("linked-{i}");
            let f = dir::create_named_file(&mut fs, root, &name).unwrap();
            let body = vec![i as u8; (rng.next_below(2500) + 600) as usize];
            fs.write_file(f, &body).unwrap();
            contents.push((name, body));
        }
        // Scramble every live label's links (the absolutes stay).
        {
            let pack = fs.disk_mut().pack_mut().unwrap();
            let total = pack.geometry().sector_count();
            for i in 0..total {
                let sector = pack.sector_mut(DiskAddress(i as u16)).unwrap();
                let mut label = sector.decoded_label();
                if label.is_in_use() {
                    label.next = DiskAddress(rng.next_u16());
                    label.prev = DiskAddress(rng.next_u16());
                    sector.label = label.encode();
                }
            }
        }
        let disk = fs.crash();
        let (mut fs, report) = Scavenger::rebuild(disk).unwrap();
        assert!(report.links_repaired > 0);
        // Links are hints: every byte of every file must survive their
        // total destruction.
        let root = fs.root_dir();
        for (name, body) in &contents {
            let f = dir::lookup(&mut fs, root, name).unwrap().expect(name);
            assert_eq!(&fs.read_file(f).unwrap(), body, "{name} damaged");
        }
    }
}
