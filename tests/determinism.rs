//! Double-run determinism pins (tier-1 companion to the `determinism` bin).
//!
//! Every workload here is executed three times — threaded, threaded again,
//! unthreaded — and must produce bit-identical trace digests, data digests,
//! and simulated elapsed time. The full-size harness (4 arms, 1000 clients)
//! runs in CI via `cargo run --release -p alto-bench --bin determinism`;
//! these are smaller shapes sized for debug-mode `cargo test`.

use alto_bench::determinism::{array_random, array_scavenge, array_seq, server_round, triple_run};

#[test]
fn array_seq_is_bit_identical_across_runs_and_threading() {
    let r = triple_run("array_seq", |t| array_seq(2, t));
    assert!(r.identical(), "{}", r.describe());
}

#[test]
fn array_random_is_bit_identical_across_runs_and_threading() {
    let r = triple_run("array_random", |t| array_random(3, t));
    assert!(r.identical(), "{}", r.describe());
}

#[test]
fn array_scavenge_is_bit_identical_across_runs_and_threading() {
    let r = triple_run("array_scavenge", |t| array_scavenge(2, t));
    assert!(r.identical(), "{}", r.describe());
}

#[test]
fn server_round_is_bit_identical_across_runs_and_threading() {
    let r = triple_run("server_round", |t| server_round(120, 2, t));
    assert!(r.identical(), "{}", r.describe());
}

/// Threading is a host-side wall-clock optimisation; it must not shift a
/// single simulated nanosecond. Pin one absolute number so an accidental
/// timing-model change shows up as a diff, not just a divergence.
#[test]
fn threading_never_moves_simulated_time() {
    let on = array_seq(4, true);
    let off = array_seq(4, false);
    assert_eq!(on.sim_ns, off.sim_ns);
    assert_eq!(on, off);
}
