//! Property-based tests on the core data structures and invariants.

use alto::prelude::*;
use alto::sim::Memory;
use proptest::prelude::*;

proptest! {
    /// Labels survive their seven-word encoding.
    #[test]
    fn label_encoding_round_trips(
        f0 in any::<u16>(), f1 in any::<u16>(), v in any::<u16>(),
        pn in any::<u16>(), l in any::<u16>(), nl in any::<u16>(), pl in any::<u16>(),
    ) {
        let label = Label {
            fid: [f0, f1],
            version: v,
            page_number: pn,
            length: l,
            next: DiskAddress(nl),
            prev: DiskAddress(pl),
        };
        prop_assert_eq!(Label::decode(&label.encode()), label);
    }

    /// CHS conversion is a bijection for every model.
    #[test]
    fn chs_bijection(da in 0u32..4872) {
        let g = DiskModel::Diablo31.geometry();
        let da = DiskAddress(da as u16);
        prop_assert_eq!(g.from_chs(g.to_chs(da)), da);
    }

    /// Byte packing into page words is invertible.
    #[test]
    fn page_byte_packing_round_trips(bytes in proptest::collection::vec(any::<u8>(), 0..=512)) {
        let mut words = [0u16; 256];
        alto::fs::file::pack_bytes(&bytes, &mut words);
        let back = alto::fs::file::unpack_bytes(&words);
        prop_assert_eq!(&back[..bytes.len()], &bytes[..]);
    }

    /// Whatever bytes go into a file come back out (against a Vec model).
    #[test]
    fn write_read_file_equivalence(
        writes in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..3000), 1..4),
    ) {
        let clock = SimClock::new();
        let drive = DiskDrive::with_formatted_pack(
            clock, Trace::new(), DiskModel::Diablo31, 1);
        let mut fs = FileSystem::format(drive).unwrap();
        let root = fs.root_dir();
        let f = dir::create_named_file(&mut fs, root, "prop.dat").unwrap();
        for bytes in &writes {
            fs.write_file(f, bytes).unwrap();
            prop_assert_eq!(&fs.read_file(f).unwrap(), bytes);
            prop_assert_eq!(fs.file_length(f).unwrap(), bytes.len() as u64);
        }
    }

    /// The zone allocator never hands out overlapping blocks and always
    /// coalesces back to a single run (against a shadow model).
    #[test]
    fn zone_allocator_model(ops in proptest::collection::vec((any::<bool>(), 1u16..50), 1..60)) {
        let mut mem = Memory::new();
        let mut zone = FirstFitZone::new(&mut mem, 0x1000, 0x1000).unwrap();
        let mut live: Vec<(u16, u16, u16)> = Vec::new(); // (addr, len, tag)
        let mut tag = 1u16;
        for (alloc, len) in ops {
            if alloc || live.is_empty() {
                if let Ok(a) = zone.allocate(&mut mem, len) {
                    // No overlap with any live block.
                    for &(b, blen, _) in &live {
                        prop_assert!(
                            a + len <= b || b + blen <= a,
                            "blocks [{a};{len}] and [{b};{blen}] overlap"
                        );
                    }
                    for i in 0..len {
                        mem.write(a + i, tag);
                    }
                    live.push((a, len, tag));
                    tag = tag.wrapping_add(1).max(1);
                }
            } else {
                let (a, alen, t) = live.swap_remove(0);
                for i in 0..alen {
                    prop_assert_eq!(mem.read(a + i), t);
                }
                zone.free(&mut mem, a).unwrap();
            }
        }
        for (a, _, _) in live.drain(..) {
            zone.free(&mut mem, a).unwrap();
        }
        prop_assert_eq!(zone.available(), 0x1000);
    }

    /// Memory streams behave like a Vec with a cursor.
    #[test]
    fn memory_stream_model(
        items in proptest::collection::vec(any::<u16>(), 0..100),
        extra in proptest::collection::vec(any::<u16>(), 0..20),
    ) {
        let mut s = MemoryStream::from_words(&items);
        let mut read = Vec::new();
        // Drain half.
        for _ in 0..items.len() / 2 {
            read.push(s.get(&mut ()).unwrap());
        }
        // Append more, then drain the rest.
        for &e in &extra {
            s.put(&mut (), e).unwrap();
        }
        while let Ok(x) = s.get(&mut ()) {
            read.push(x);
        }
        let mut want = items.clone();
        want.extend_from_slice(&extra);
        prop_assert_eq!(read, want);
    }

    /// Packet decoding never panics and never accepts a corrupted packet.
    #[test]
    fn packet_fuzz(words in proptest::collection::vec(any::<u16>(), 0..300)) {
        let _ = Packet::decode(&words); // must not panic
    }

    /// A single flipped bit anywhere in a packet is always detected.
    #[test]
    fn packet_bit_flips_detected(
        payload in proptest::collection::vec(any::<u16>(), 0..32),
        seq in any::<u16>(),
        flip_word in any::<usize>(),
        flip_bit in 0u32..16,
    ) {
        let p = Packet {
            ptype: alto::net::PacketType::Data,
            dst_host: 2,
            src_host: 1,
            dst_socket: 0x30,
            src_socket: 0x31,
            seq,
            payload,
        };
        let mut wire = p.encode();
        let i = flip_word % wire.len();
        wire[i] ^= 1 << flip_bit;
        if let Ok(decoded) = Packet::decode(&wire) { prop_assert!(
            false,
            "corruption at word {i} produced a valid packet {decoded:?}"
        ) }
    }

    /// The assembler's instruction encodings always decode back (via the
    /// disassembler path) to executable words; every 16-bit word decodes.
    #[test]
    fn every_word_disassembles(w in any::<u16>()) {
        let text = alto::machine::disassemble(w);
        prop_assert!(!text.is_empty());
        prop_assert_eq!(alto::machine::Instr::decode(w).encode(), w);
    }

    /// Directory entry lists survive encoding (against a Vec model).
    #[test]
    fn directory_encoding_round_trips(
        entries in proptest::collection::vec(
            ("[a-z]{1,12}", 0u32..1000, any::<bool>(), 1u16..4, any::<u16>()),
            0..20,
        ),
    ) {
        use alto::fs::dir::DirEntry;
        use alto::fs::names::{FileFullName, Fv, SerialNumber};
        // Deduplicate names (directories are maps).
        let mut seen = std::collections::HashSet::new();
        let entries: Vec<DirEntry> = entries
            .into_iter()
            .filter(|(name, ..)| seen.insert(name.clone()))
            .map(|(name, num, d, v, da)| DirEntry {
                name,
                file: FileFullName::new(
                    Fv::new(SerialNumber::new(num, d), v),
                    DiskAddress(da),
                ),
            })
            .collect();
        let bytes = alto::fs::dir::encode_entries(&entries);
        prop_assert_eq!(alto::fs::dir::parse_entries(&bytes), entries);
    }

    /// The type-ahead ring buffer is FIFO for any push/pop sequence.
    #[test]
    fn typeahead_fifo(ops in proptest::collection::vec(any::<Option<u8>>(), 0..200)) {
        use alto::os::typeahead::TypeAhead;
        let mut mem = Memory::new();
        let t = TypeAhead::init(&mut mem, 0xF000, 64);
        let mut model = std::collections::VecDeque::new();
        for op in ops {
            match op {
                Some(key) => {
                    let accepted = t.push(&mut mem, key as u16);
                    if accepted {
                        model.push_back(key as u16);
                    } else {
                        prop_assert!(model.len() >= 60, "dropped while not full");
                    }
                }
                None => {
                    prop_assert_eq!(t.pop(&mut mem), model.pop_front());
                }
            }
            prop_assert_eq!(t.len(&mem) as usize, model.len());
        }
    }
}
