//! Randomized property tests on the core data structures and invariants,
//! driven by the in-tree deterministic PRNG (no external dependencies, so
//! the workspace builds offline).

use alto::prelude::*;
use alto::sim::{Memory, SplitMix64};

/// Labels survive their seven-word encoding.
#[test]
fn label_encoding_round_trips() {
    let mut rng = SplitMix64::new(0xA11CE);
    for _ in 0..500 {
        let label = Label {
            fid: [rng.next_u16(), rng.next_u16()],
            version: rng.next_u16(),
            page_number: rng.next_u16(),
            length: rng.next_u16(),
            next: DiskAddress(rng.next_u16()),
            prev: DiskAddress(rng.next_u16()),
        };
        assert_eq!(Label::decode(&label.encode()), label);
    }
}

/// CHS conversion is a bijection for every address.
#[test]
fn chs_bijection() {
    let g = DiskModel::Diablo31.geometry();
    for da in 0..4872u32 {
        let da = DiskAddress(da as u16);
        assert_eq!(g.from_chs(g.to_chs(da)), da);
    }
}

/// Byte packing into page words is invertible.
#[test]
fn page_byte_packing_round_trips() {
    let mut rng = SplitMix64::new(7);
    for _ in 0..64 {
        let len = rng.next_below(513) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u16() as u8).collect();
        let mut words = [0u16; 256];
        alto::fs::file::pack_bytes(&bytes, &mut words);
        let back = alto::fs::file::unpack_bytes(&words);
        assert_eq!(&back[..bytes.len()], &bytes[..]);
    }
}

/// Whatever bytes go into a file come back out (against a Vec model).
#[test]
fn write_read_file_equivalence() {
    let mut rng = SplitMix64::new(0xF11E);
    for _case in 0..8 {
        let clock = SimClock::new();
        let drive = DiskDrive::with_formatted_pack(clock, Trace::new(), DiskModel::Diablo31, 1);
        let mut fs = FileSystem::format(drive).unwrap();
        let root = fs.root_dir();
        let f = dir::create_named_file(&mut fs, root, "prop.dat").unwrap();
        let writes = 1 + rng.next_below(3) as usize;
        for _ in 0..writes {
            let len = rng.next_below(3000) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u16() as u8).collect();
            fs.write_file(f, &bytes).unwrap();
            assert_eq!(fs.read_file(f).unwrap(), bytes);
            assert_eq!(fs.file_length(f).unwrap(), bytes.len() as u64);
        }
    }
}

/// The zone allocator never hands out overlapping blocks and always
/// coalesces back to a single run (against a shadow model).
#[test]
fn zone_allocator_model() {
    let mut rng = SplitMix64::new(0x20FE5);
    for _case in 0..16 {
        let mut mem = Memory::new();
        let mut zone = FirstFitZone::new(&mut mem, 0x1000, 0x1000).unwrap();
        let mut live: Vec<(u16, u16, u16)> = Vec::new(); // (addr, len, tag)
        let mut tag = 1u16;
        let ops = 1 + rng.next_below(59);
        for _ in 0..ops {
            let alloc = rng.chance(1, 2);
            let len = (rng.next_below(49) + 1) as u16;
            if alloc || live.is_empty() {
                if let Ok(a) = zone.allocate(&mut mem, len) {
                    for &(b, blen, _) in &live {
                        assert!(
                            a + len <= b || b + blen <= a,
                            "blocks [{a};{len}] and [{b};{blen}] overlap"
                        );
                    }
                    for i in 0..len {
                        mem.write(a + i, tag);
                    }
                    live.push((a, len, tag));
                    tag = tag.wrapping_add(1).max(1);
                }
            } else {
                let (a, alen, t) = live.swap_remove(0);
                for i in 0..alen {
                    assert_eq!(mem.read(a + i), t);
                }
                zone.free(&mut mem, a).unwrap();
            }
        }
        for (a, _, _) in live.drain(..) {
            zone.free(&mut mem, a).unwrap();
        }
        assert_eq!(zone.available(), 0x1000);
    }
}

/// Memory streams behave like a Vec with a cursor.
#[test]
fn memory_stream_model() {
    let mut rng = SplitMix64::new(0x57EA);
    for _case in 0..32 {
        let items: Vec<u16> = (0..rng.next_below(100)).map(|_| rng.next_u16()).collect();
        let extra: Vec<u16> = (0..rng.next_below(20)).map(|_| rng.next_u16()).collect();
        let mut s = MemoryStream::from_words(&items);
        let mut read = Vec::new();
        for _ in 0..items.len() / 2 {
            read.push(s.get(&mut ()).unwrap());
        }
        for &e in &extra {
            s.put(&mut (), e).unwrap();
        }
        while let Ok(x) = s.get(&mut ()) {
            read.push(x);
        }
        let mut want = items.clone();
        want.extend_from_slice(&extra);
        assert_eq!(read, want);
    }
}

/// Packet decoding never panics and never accepts a corrupted packet.
#[test]
fn packet_fuzz() {
    let mut rng = SplitMix64::new(0xFACE);
    for _ in 0..200 {
        let words: Vec<u16> = (0..rng.next_below(300)).map(|_| rng.next_u16()).collect();
        let _ = Packet::decode(&words); // must not panic
    }
}

/// A single flipped bit anywhere in a packet is always detected.
#[test]
fn packet_bit_flips_detected() {
    let mut rng = SplitMix64::new(0xB17);
    for _ in 0..200 {
        let payload: Vec<u16> = (0..rng.next_below(32)).map(|_| rng.next_u16()).collect();
        let p = Packet {
            ptype: alto::net::PacketType::Data,
            dst_host: 2,
            src_host: 1,
            dst_socket: 0x30,
            src_socket: 0x31,
            seq: rng.next_u16(),
            payload,
        };
        let mut wire = p.encode();
        let i = rng.next_below(wire.len() as u64) as usize;
        let bit = rng.next_below(16) as u32;
        wire[i] ^= 1 << bit;
        if let Ok(decoded) = Packet::decode(&wire) {
            panic!("corruption at word {i} produced a valid packet {decoded:?}");
        }
    }
}

/// Every 16-bit word disassembles, and its decoding re-encodes to itself.
#[test]
fn every_word_disassembles() {
    // Exhaustive: the whole 16-bit space is small enough.
    for w in 0..=u16::MAX {
        let text = alto::machine::disassemble(w);
        assert!(!text.is_empty());
        assert_eq!(alto::machine::Instr::decode(w).encode(), w);
    }
}

/// Directory entry lists survive encoding (against a Vec model).
#[test]
fn directory_encoding_round_trips() {
    use alto::fs::dir::DirEntry;
    use alto::fs::names::{FileFullName, Fv, SerialNumber};
    let mut rng = SplitMix64::new(0xD14);
    for _case in 0..32 {
        let mut seen = std::collections::HashSet::new();
        let mut entries = Vec::new();
        for _ in 0..rng.next_below(20) {
            let len = 1 + rng.next_below(12) as usize;
            let name: String = (0..len)
                .map(|_| (b'a' + rng.next_below(26) as u8) as char)
                .collect();
            if !seen.insert(name.clone()) {
                continue;
            }
            entries.push(DirEntry {
                name,
                file: FileFullName::new(
                    Fv::new(
                        SerialNumber::new(rng.next_below(1000) as u32, rng.chance(1, 2)),
                        (rng.next_below(3) + 1) as u16,
                    ),
                    DiskAddress(rng.next_u16()),
                ),
            });
        }
        let bytes = alto::fs::dir::encode_entries(&entries);
        assert_eq!(alto::fs::dir::parse_entries(&bytes), entries);
    }
}

/// The type-ahead ring buffer is FIFO for any push/pop sequence.
#[test]
fn typeahead_fifo() {
    use alto::os::typeahead::TypeAhead;
    let mut rng = SplitMix64::new(0x7EA);
    for _case in 0..16 {
        let mut mem = Memory::new();
        let t = TypeAhead::init(&mut mem, 0xF000, 64);
        let mut model = std::collections::VecDeque::new();
        for _ in 0..rng.next_below(200) {
            if rng.chance(1, 2) {
                let key = rng.next_u16() & 0xFF;
                let accepted = t.push(&mut mem, key);
                if accepted {
                    model.push_back(key);
                } else {
                    assert!(model.len() >= 60, "dropped while not full");
                }
            } else {
                assert_eq!(t.pop(&mut mem), model.pop_front());
            }
            assert_eq!(t.len(&mem) as usize, model.len());
        }
    }
}
