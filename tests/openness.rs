//! The openness story (§1, §5.2): the system's packages compose with
//! user-supplied implementations of the abstract objects.
//!
//! "It is common for a program using a large non-standard disk to include
//! a package that implements only the disk object for the special disk
//! hardware, and to open streams on files using the standard operating
//! system disk stream implementation."

use alto::disk::{DiskError, DiskGeometry, Sector, SectorBuf, SectorOp};
use alto::prelude::*;
use alto::sim::Trace;
use alto::streams::{read_all, write_all, CountingStream, StreamError};

/// A user-written disk object: a zero-latency RAM disk with an exotic
/// geometry, implementing only the `Disk` trait.
struct RamDisk {
    geometry: DiskGeometry,
    sectors: Vec<Sector>,
    clock: SimClock,
    trace: Trace,
}

impl RamDisk {
    fn new(clock: SimClock) -> RamDisk {
        let geometry = DiskGeometry {
            cylinders: 64,
            heads: 4,
            sectors: 16,
        };
        let sectors = (0..geometry.sector_count() as u16)
            .map(|i| Sector::formatted(42, DiskAddress(i)))
            .collect();
        RamDisk {
            geometry,
            sectors,
            clock,
            trace: Trace::new(),
        }
    }
}

impl Disk for RamDisk {
    fn geometry(&self) -> Result<DiskGeometry, DiskError> {
        Ok(self.geometry)
    }

    fn pack_number(&self) -> Result<u16, DiskError> {
        Ok(42)
    }

    fn do_op(
        &mut self,
        da: DiskAddress,
        op: SectorOp,
        buf: &mut SectorBuf,
    ) -> Result<(), DiskError> {
        if !self.geometry.contains(da) {
            return Err(DiskError::InvalidAddress(da));
        }
        // Zero latency, but full check semantics: the robustness discipline
        // comes from the *format*, not from the drive.
        alto::disk::sector::apply(op, da, &mut self.sectors[da.0 as usize], buf)
    }

    fn clock(&self) -> &SimClock {
        &self.clock
    }

    fn trace(&self) -> &Trace {
        &self.trace
    }
}

/// The standard file system runs unmodified on the user's disk object.
#[test]
fn standard_fs_on_a_user_disk() {
    let clock = SimClock::new();
    let mut fs = FileSystem::format(RamDisk::new(clock.clone())).unwrap();
    let root = fs.root_dir();
    let f = dir::create_named_file(&mut fs, root, "on-ram.txt").unwrap();
    fs.write_file(f, b"no moving parts").unwrap();
    assert_eq!(fs.read_file(f).unwrap(), b"no moving parts");
    // Zero simulated time passed: the RAM disk charges nothing.
    assert_eq!(clock.now(), SimTime::ZERO);
}

/// The standard *streams* run on the standard fs on the user disk.
#[test]
fn standard_streams_on_a_user_disk() {
    let clock = SimClock::new();
    let mut fs = FileSystem::format(RamDisk::new(clock)).unwrap();
    let root = fs.root_dir();
    let f = dir::create_named_file(&mut fs, root, "s.dat").unwrap();
    let mut s = DiskByteStream::open(&mut fs, f).unwrap();
    for b in b"streamed onto RAM" {
        s.put_byte(&mut fs, *b).unwrap();
    }
    s.close(&mut fs).unwrap();
    assert_eq!(fs.read_file(f).unwrap(), b"streamed onto RAM");
}

/// Even the Scavenger — the most structure-dependent component — works on
/// the user disk, because it only needs labels and the check semantics.
#[test]
fn scavenger_on_a_user_disk() {
    let clock = SimClock::new();
    let mut fs = FileSystem::format(RamDisk::new(clock)).unwrap();
    let root = fs.root_dir();
    let f = dir::create_named_file(&mut fs, root, "keep.txt").unwrap();
    fs.write_file(f, b"scavenge me").unwrap();
    dir::remove(&mut fs, root, "keep.txt").unwrap(); // orphan it
    let disk = fs.crash();
    let (mut fs, report) = Scavenger::rebuild(disk).unwrap();
    assert_eq!(report.orphans_adopted, 1);
    let root = fs.root_dir();
    let g = dir::lookup(&mut fs, root, "keep.txt").unwrap().unwrap();
    assert_eq!(fs.read_file(g).unwrap(), b"scavenge me");
}

/// The whole OS assembles over the user's disk: AltoOs is generic in D.
#[test]
fn whole_os_on_a_user_disk() {
    let clock = SimClock::new();
    let machine = Machine::new(clock.clone(), Trace::new());
    let mut os: AltoOs<RamDisk> = AltoOs::install(machine, RamDisk::new(clock)).unwrap();
    os.type_text("ls\nquit\n");
    os.run_executive(5).unwrap();
    assert!(os.machine.display.transcript().contains("SysDir"));
}

/// User-defined streams compose with system streams: a counting wrapper
/// around a memory stream around nothing at all.
#[test]
fn user_streams_compose() {
    let mut s = CountingStream::new(CountingStream::new(MemoryStream::new()));
    write_all(&mut s, &mut (), &[1, 2, 3, 4]).unwrap();
    s.reset(&mut ()).unwrap();
    assert_eq!(read_all(&mut s, &mut ()).unwrap(), vec![1, 2, 3, 4]);
    assert_eq!(s.puts(), 4);
    assert_eq!(s.gets(), 4);
}

/// A user-written stream type works anywhere a stream is expected: here,
/// a stream that produces the Fibonacci sequence.
#[test]
fn user_stream_implementation() {
    struct Fib(u16, u16, usize);
    impl Stream<()> for Fib {
        fn get(&mut self, (): &mut ()) -> Result<u16, StreamError> {
            if self.2 == 0 {
                return Err(StreamError::EndOfStream);
            }
            self.2 -= 1;
            let out = self.0;
            let next = self.0.wrapping_add(self.1);
            self.0 = self.1;
            self.1 = next;
            Ok(out)
        }
        fn reset(&mut self, (): &mut ()) -> Result<(), StreamError> {
            *self = Fib(0, 1, 10);
            Ok(())
        }
        fn endof(&mut self, (): &mut ()) -> Result<bool, StreamError> {
            Ok(self.2 == 0)
        }
        fn close(&mut self, (): &mut ()) -> Result<(), StreamError> {
            Ok(())
        }
    }
    let mut counted = CountingStream::new(Fib(0, 1, 10));
    let items = read_all(&mut counted, &mut ()).unwrap();
    assert_eq!(items, vec![0, 1, 1, 2, 3, 5, 8, 13, 21, 34]);
    assert_eq!(counted.gets(), 10);
}

/// Zones allocate any part of memory, "whether in the system free storage
/// region or not" — including a region the program just got from Junta.
#[test]
fn zone_over_junta_reclaimed_memory() {
    let mut os = alto::fresh_alto();
    let floor_before = os.levels().resident_base();
    os.junta(4).unwrap();
    let floor_after = os.levels().resident_base();
    assert!(floor_after > floor_before);
    // Build a zone exactly over the reclaimed words.
    let reclaimed = floor_after - floor_before;
    let mut zone = FirstFitZone::new(&mut os.machine.mem, floor_before, reclaimed).unwrap();
    let a = zone.allocate(&mut os.machine.mem, 100).unwrap();
    assert!(a >= floor_before && a < floor_after);
    os.machine.mem.write(a, 0x1357);
    zone.free(&mut os.machine.mem, a).unwrap();
    os.counter_junta(); // the OS takes its storage back
}

/// Two drives, one file system (§2: "one or two moving-head disk
/// drives"): the DualDrive adapter makes the standard file system span
/// both packs, and files land on whichever drive has the space.
#[test]
fn one_file_system_across_two_drives() {
    use alto::disk::DualDrive;
    let clock = SimClock::new();
    let dual = DualDrive::with_formatted_packs(clock, Trace::new(), DiskModel::Diablo31);
    let mut fs = FileSystem::format(dual).unwrap();
    assert_eq!(fs.descriptor().bitmap.len(), 2 * 4872);

    // Fill past one drive's capacity so files must spill onto unit 1.
    let root = fs.root_dir();
    let mut names = Vec::new();
    for i in 0..40 {
        let name = format!("span-{i:02}.dat");
        let f = dir::create_named_file(&mut fs, root, &name).unwrap();
        fs.write_file(f, &vec![i as u8; 150 * 512]).unwrap();
        names.push(name);
    }
    // Unit 1 definitely has live pages now.
    let (_, used_1, _) = fs.disk().unit(1).pack().unwrap().label_census();
    assert!(used_1 > 1000, "unit 1 only has {used_1} live pages");

    // Everything reads back.
    for (i, name) in names.iter().enumerate() {
        let f = dir::lookup(&mut fs, root, name).unwrap().unwrap();
        assert_eq!(fs.read_file(f).unwrap(), vec![i as u8; 150 * 512]);
    }

    // And the Scavenger sweeps both packs.
    let disk = fs.crash();
    let (mut fs, report) = Scavenger::rebuild(disk).unwrap();
    assert_eq!(report.sectors_scanned, 2 * 4872);
    let root = fs.root_dir();
    for name in &names {
        assert!(
            dir::lookup(&mut fs, root, name).unwrap().is_some(),
            "{name}"
        );
    }
}

/// The ablation: remove the label checks and the §3.3 guarantee is gone —
/// the same wild writes that bounced in `tests/robustness.rs` now destroy
/// live data.
#[test]
fn without_label_checks_wild_writes_destroy_data() {
    use alto::disk::UncheckedDisk;
    use alto::fs::names::{Fv, PageName, SerialNumber};

    let clock = SimClock::new();
    let drive = DiskDrive::with_formatted_pack(clock, Trace::new(), DiskModel::Diablo31, 1);
    let mut fs = FileSystem::format(UncheckedDisk::new(drive)).unwrap();
    let root = fs.root_dir();
    let f = dir::create_named_file(&mut fs, root, "victim.txt").unwrap();
    fs.write_file(f, &vec![0x11u8; 2000]).unwrap();

    // The same wild write pattern as the robustness test.
    let bogus = Fv::new(SerialNumber::new(0x3FFF, false), 1);
    let total = fs.descriptor().bitmap.len() as u16;
    let mut landed = 0u32;
    for da in (0..total).step_by(7) {
        // On the checked disk every one of these is rejected; here the
        // write happens first and software notices (if at all) too late.
        let _ = fs.write_page(PageName::new(bogus, 1, DiskAddress(da)), &[0xDEAD; 256]);
        landed += 1;
    }
    assert!(landed > 0);
    // The victim is corrupt or unreadable — the ablation proves the
    // mechanism carried the guarantee.
    let damaged = match fs.read_file(f) {
        Err(_) => true,
        Ok(bytes) => bytes != vec![0x11u8; 2000],
    };
    assert!(damaged, "data survived without label checks only by luck");
}

/// §5.2's file-server pattern: a program on a big non-standard disk keeps
/// only the low levels resident (overlays manage the rest), yet uses the
/// standard disk-stream package — here, a Trident-based server that Juntas
/// to level 8 and still serves files through streams.
#[test]
fn file_server_on_the_big_disk_with_overlays() {
    let clock = SimClock::new();
    let machine = Machine::new(clock.clone(), Trace::new());
    let big = DiskDrive::with_formatted_pack(clock, Trace::new(), DiskModel::Trident, 5);
    let mut os = AltoOs::install(machine, big).expect("install on Trident");

    // Stock the server with files.
    let root = os.fs.root_dir();
    for i in 0..5 {
        let f = dir::create_named_file(&mut os.fs, root, &format!("doc-{i}")).unwrap();
        os.fs
            .write_file(f, format!("document {i}").as_bytes())
            .unwrap();
    }

    // The server keeps levels 1..=8 (streams) and drops directories,
    // keyboard/display streams and the loader: maximum space for buffers.
    let freed = os.junta(8).unwrap();
    assert!(freed > 2000);

    // Disk streams still work (level 8 is resident)...
    let h = os.open_read("doc-3").unwrap();
    let mut served = Vec::new();
    while let Some(b) = os.stream_get(h).unwrap() {
        served.push(b);
    }
    os.stream_close(h).unwrap();
    assert_eq!(served, b"document 3");

    // ...but the display service is gone, as the server intended.
    assert!(os
        .handle_syscall(alto::os::syscalls::SysCall::PutChar.code(), 0)
        .is_err());

    // When the server shuts down, CounterJunta hands back a full system.
    os.counter_junta();
    os.type_text("ls\nquit\n");
    os.run_executive(5).unwrap();
    assert!(os.machine.display.transcript().contains("doc-4"));
}

/// §6's lament, dissolved: "there is no way to intercept all accesses to
/// the file system … and direct them to some other device, such as a
/// remote file system. This could be done only by changing the machine's
/// microcode." With the disk as an abstract object, a remote file system
/// is just another implementation: every sector operation travels over
/// the simulated ether to a drive on another host, and the *standard*
/// file system (Scavenger included) runs on top, unchanged.
#[test]
fn remote_file_system_through_the_disk_trait() {
    use alto::disk::{DiskError, DiskGeometry, SectorBuf, SectorOp};
    use alto::net::{Packet, PacketType};

    /// A disk whose platters are on another machine: requests and replies
    /// cross the ether (both transmissions charged to the shared clock).
    struct NetDisk {
        ether: Ether,
        /// The remote drive, driven inline by the "server half".
        remote: DiskDrive,
        client: u8,
        server: u8,
        seq: u16,
    }

    impl NetDisk {
        fn round_trip(
            &mut self,
            da: DiskAddress,
            op: SectorOp,
            buf: &mut SectorBuf,
        ) -> Result<(), DiskError> {
            // Request: op encoding + the memory-side buffers.
            self.seq = self.seq.wrapping_add(1);
            let mut payload = vec![da.0, encode_op(op)];
            payload.extend_from_slice(&buf.header);
            payload.extend_from_slice(&buf.label);
            // (The 256 data words ride in a second packet to stay within
            // the MTU.)
            let request = Packet {
                ptype: PacketType::Other(20),
                dst_host: self.server,
                src_host: self.client,
                dst_socket: 0o60,
                src_socket: 0o61,
                seq: self.seq,
                payload,
            };
            let data_packet = Packet {
                ptype: PacketType::Other(21),
                dst_host: self.server,
                src_host: self.client,
                dst_socket: 0o60,
                src_socket: 0o61,
                seq: self.seq,
                payload: buf.data.to_vec(),
            };
            self.ether.send(request).unwrap();
            self.ether.send(data_packet).unwrap();

            // Server half: receive, perform on the real drive, reply.
            let req = self.ether.receive(self.server, 0o60).unwrap().unwrap();
            let dat = self.ether.receive(self.server, 0o60).unwrap().unwrap();
            let mut remote_buf = SectorBuf::zeroed();
            remote_buf.header = [req.payload[2], req.payload[3]];
            remote_buf.label.copy_from_slice(&req.payload[4..11]);
            remote_buf.data.copy_from_slice(&dat.payload);
            let remote_da = DiskAddress(req.payload[0]);
            let result = self.remote.do_op(remote_da, op, &mut remote_buf);
            let status = match &result {
                Ok(()) => 0u16,
                Err(_) => 1,
            };
            let mut reply_payload = vec![status];
            reply_payload.extend_from_slice(&remote_buf.header);
            reply_payload.extend_from_slice(&remote_buf.label);
            let reply = Packet {
                ptype: PacketType::Other(22),
                dst_host: self.client,
                src_host: self.server,
                dst_socket: 0o61,
                src_socket: 0o60,
                seq: self.seq,
                payload: reply_payload,
            };
            let reply_data = Packet {
                ptype: PacketType::Other(23),
                dst_host: self.client,
                src_host: self.server,
                dst_socket: 0o61,
                src_socket: 0o60,
                seq: self.seq,
                payload: remote_buf.data.to_vec(),
            };
            self.ether.send(reply).unwrap();
            self.ether.send(reply_data).unwrap();

            // Client half: unpack the reply into the caller's buffers.
            let rep = self.ether.receive(self.client, 0o61).unwrap().unwrap();
            let repd = self.ether.receive(self.client, 0o61).unwrap().unwrap();
            buf.header = [rep.payload[1], rep.payload[2]];
            buf.label.copy_from_slice(&rep.payload[3..10]);
            buf.data.copy_from_slice(&repd.payload);
            result
        }
    }

    fn encode_op(op: SectorOp) -> u16 {
        use alto::disk::Action;
        let f = |a: Action| match a {
            Action::Read => 0u16,
            Action::Check => 1,
            Action::Write => 2,
        };
        f(op.header) | (f(op.label) << 2) | (f(op.value) << 4)
    }

    impl Disk for NetDisk {
        fn geometry(&self) -> Result<DiskGeometry, DiskError> {
            self.remote.geometry()
        }
        fn pack_number(&self) -> Result<u16, DiskError> {
            self.remote.pack_number()
        }
        fn do_op(
            &mut self,
            da: DiskAddress,
            op: SectorOp,
            buf: &mut SectorBuf,
        ) -> Result<(), DiskError> {
            self.round_trip(da, op, buf)
        }
        fn clock(&self) -> &SimClock {
            self.remote.clock()
        }
        fn trace(&self) -> &Trace {
            self.remote.trace()
        }
    }

    // Assemble the remote configuration.
    let clock = SimClock::new();
    let mut ether = Ether::new(clock.clone(), Trace::new());
    ether.attach(1).unwrap();
    ether.attach(2).unwrap();
    let remote =
        DiskDrive::with_formatted_pack(clock.clone(), Trace::new(), DiskModel::Diablo31, 9);
    let netdisk = NetDisk {
        ether,
        remote,
        client: 1,
        server: 2,
        seq: 0,
    };

    // The standard file system, on platters across the network.
    let mut fs = FileSystem::format(netdisk).expect("format remotely");
    let root = fs.root_dir();
    let f = dir::create_named_file(&mut fs, root, "remote.txt").unwrap();
    fs.write_file(f, b"my platters are elsewhere").unwrap();
    assert_eq!(fs.read_file(f).unwrap(), b"my platters are elsewhere");

    // Even the check discipline crosses the wire: a wild write bounces.
    use alto::fs::names::{Fv, PageName, SerialNumber};
    let bogus = Fv::new(SerialNumber::new(0x3FFF, false), 1);
    assert!(fs
        .write_page(PageName::new(bogus, 1, DiskAddress(50)), &[0xDEAD; 256])
        .is_err());

    // And the Scavenger works over the network too.
    let disk = fs.crash();
    let (mut fs, report) = Scavenger::rebuild(disk).unwrap();
    assert_eq!(report.sectors_scanned, 4872);
    let root = fs.root_dir();
    let g = dir::lookup(&mut fs, root, "remote.txt").unwrap().unwrap();
    assert_eq!(fs.read_file(g).unwrap(), b"my platters are elsewhere");
}
