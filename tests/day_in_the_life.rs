//! A whole day on one Alto: every major mechanism in one continuous
//! scenario, on one pack, with the simulated clock running throughout.

use alto::os::debug::SwateeDebugger;
use alto::os::exec::ExecExit;
use alto::prelude::*;

#[test]
fn a_day_in_the_life_of_an_alto() {
    // 08:00 — the researcher installs the system on a fresh pack.
    let mut os = alto::fresh_alto();
    let clock = os.machine.clock().clone();
    os.set_user("thacker", "maxc");
    os.install_vm_keyboard_isr().unwrap();

    // 08:05 — install a couple of tools.
    os.store_program(
        "banner.run",
        r#"
        lda 2, msgp
        lda 1, lenv
loop:   lda 0, 0,2
        jsr @putchar
        inc 2, 2
        dsz lenv
        jmp loop
        halt
putchar: .fixup "PutChar"
lenv:   .word 5
msgp:   .word msg
msg:    .word 'r'
        .word 'e'
        .word 'a'
        .word 'd'
        .word 'y'
        "#,
    )
    .unwrap();
    // The editor's install phase: auxiliary files + hint state file.
    os.install_hints("Editor.state", &["scratch1", "journal"], 4)
        .unwrap();

    // 09:00 — a working session at the keyboard.
    os.type_text("banner.run\nls\nquit\n");
    assert_eq!(os.run_executive(10).unwrap(), ExecExit::Quit);
    assert!(os.machine.display.transcript().contains("ready"));
    assert!(os.machine.display.transcript().contains("Editor.state"));

    // 10:00 — real work: write a paper, install the world as the boot file.
    let root = os.fs.root_dir();
    let paper = dir::create_named_file(&mut os.fs, root, "sosp79.draft").unwrap();
    let draft = "An open operating system establishes no sharp boundary. ".repeat(60);
    os.fs.write_file(paper, draft.as_bytes()).unwrap();
    os.machine.ac[2] = 0x0800; // morning's register state, whatever it is
    os.install_boot_file().unwrap();

    // 11:00 — debugging: a colleague's program loops; DEBUG key, patch.
    let code = alto::machine::assemble(
        "
        subz 0, 0
loop:   inc 0, 0
        lda 1, limit
        sub# 0, 1, szr
        jmp loop
        sta 0, @resp
        halt
limit:  .word 0          ; BUG: loops ~forever (wraps through 64K)
resp:   .word 0o3000
        ",
    )
    .unwrap();
    os.machine.load_program(0o400, &code.words).unwrap();
    let limit_addr = code.labels["limit"];
    let bp = os.set_breakpoint(code.labels["loop"]);
    os.run_until_break(bp, 10_000).unwrap();
    let mut dbg = SwateeDebugger::open_named(&mut os).unwrap();
    dbg.write(limit_addr, 25);
    dbg.save(&mut os).unwrap();
    assert!(matches!(
        os.resume_swatee(bp, 100_000).unwrap(),
        alto::os::DebugStop::Halted
    ));
    assert_eq!(os.machine.mem.read(0o3000), 25);

    // 14:00 — disaster: the machine crashes mid-write; the allocation map
    // on disk is stale and a sector dies.
    let victim = dir::lookup(&mut os.fs, root, "journal").unwrap().unwrap();
    os.fs.write_file(victim, &vec![7u8; 2000]).unwrap();
    {
        let (l, _) = os.fs.read_page(victim.leader_page()).unwrap();
        let da = l.next;
        os.fs.disk_mut().pack_mut().unwrap().damage(da);
    }
    let machine_clock = clock.clone();
    let disk = os.fs.crash();

    // 14:01 — scavenge and reboot from the boot button.
    let (fs, report) = Scavenger::rebuild(disk).unwrap();
    assert!(report.bad_pages >= 1);
    let machine = Machine::new(machine_clock.clone(), Trace::new());
    let mut os = AltoOs::assemble(machine, fs);
    os.bootstrap().unwrap();
    assert_eq!(os.machine.ac[2], 0x0800, "the morning's world is back");
    // The resident user record travelled in the boot image.
    assert_eq!(os.user(), Some(("thacker".into(), "maxc".into())));

    // 15:00 — the draft survived everything.
    let root = os.fs.root_dir();
    let paper = dir::lookup(&mut os.fs, root, "sosp79.draft")
        .unwrap()
        .unwrap();
    assert_eq!(os.fs.read_file(paper).unwrap(), draft.as_bytes());

    // 16:00 — housekeeping: compact the disk, verify, keep working.
    Compactor::run(&mut os.fs).unwrap();
    let root = os.fs.root_dir();
    let paper = dir::lookup(&mut os.fs, root, "sosp79.draft")
        .unwrap()
        .unwrap();
    assert_eq!(os.fs.read_file(paper).unwrap(), draft.as_bytes());

    // 17:00 — one more session; the tools still run; then go home.
    os.type_text("banner.run\nspace\nquit\n");
    assert_eq!(os.run_executive(10).unwrap(), ExecExit::Quit);
    assert!(os.machine.display.transcript().contains("ready"));
    assert!(os.machine.display.transcript().contains("pages free"));

    // The whole day took real (simulated) time.
    assert!(
        clock.now() > SimTime::from_secs(60),
        "day took {}",
        clock.now()
    );
}
