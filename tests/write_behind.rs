//! The write-behind pipeline, end to end (PR 3).
//!
//! Three properties, matching the three halves of the pipeline:
//!
//! 1. **Speed** — a long sequential overwrite through a stream runs at
//!    least 5x faster with the delayed-write buffer than with the
//!    flush-per-crossing ablation, and a batch spanning both units of a
//!    [`DualDrive`] finishes in at most 0.6x the serialized time.
//! 2. **Safety** — a crash with dirty pages still parked loses only those
//!    pages: everything the stream *drained* survives the Scavenger, the
//!    parked pages simply show their old contents (delayed-write
//!    semantics), and the rebuilt file system stays fully consistent.
//! 3. **Coherence** — no reader, through the file system or a second
//!    stream, ever observes stale data once a drain has happened.

use alto::disk::{BatchRequest, DualDrive, SectorBuf, SectorOp};
use alto::prelude::*;
use alto_bench::{consecutive_file, fresh_fs};

const PAGE: usize = 512;

/// Overwrites a 100-page consecutive file byte by byte through a stream
/// and returns the simulated time it took, plus the file system.
fn seq_overwrite(write_behind: bool) -> (f64, FileSystem<DiskDrive>) {
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let clock = fs.disk().clock().clone();
    let f = consecutive_file(&mut fs, "seq.dat", 100);
    let mut s = DiskByteStream::open(&mut fs, f).unwrap();
    s.set_write_behind(&mut fs, write_behind).unwrap();
    let t0 = clock.now();
    for _ in 0..100 * PAGE {
        s.put_byte(&mut fs, 0x5A).unwrap();
    }
    s.flush(&mut fs).unwrap();
    let dt = (clock.now() - t0).as_secs_f64();
    s.close(&mut fs).unwrap();
    (dt, fs)
}

#[test]
fn sequential_write_behind_is_at_least_5x_faster() {
    let (fast, mut fs) = seq_overwrite(true);
    let (slow, _) = seq_overwrite(false);
    let ratio = slow / fast;
    assert!(ratio >= 5.0, "write-behind speedup only {ratio:.2}x");
    // The data actually landed, and the drains were coalesced batches.
    let root = fs.root_dir();
    let f = dir::lookup(&mut fs, root, "seq.dat").unwrap().unwrap();
    assert_eq!(fs.read_file(f).unwrap(), vec![0x5A; 100 * PAGE]);
    let stats = fs.disk().io_stats();
    assert!(stats.wb_drains > 0, "no coalesced drains recorded");
    assert!(
        stats.wb_coalesced >= 90,
        "only {} pages went through the write-behind buffer",
        stats.wb_coalesced
    );
}

#[test]
fn dual_drive_overlap_is_at_most_0_6x_serial() {
    // The same spanning workload, serialized and overlapped: 24 sectors
    // alternating between the two units, with seeks between them.
    let elapsed = |overlap: bool| {
        let clock = SimClock::new();
        let mut dual =
            DualDrive::with_formatted_packs(clock.clone(), Trace::new(), DiskModel::Diablo31);
        dual.set_overlap_enabled(overlap);
        let per_drive = (dual.geometry().unwrap().sector_count() / 2) as u16;
        let mut batch: Vec<BatchRequest> = (0..24u16)
            .map(|i| {
                let local = 200 + 37 * (i / 2);
                let unit = i % 2;
                let da = DiskAddress(unit * per_drive + local);
                BatchRequest::new(da, SectorOp::READ_ALL, SectorBuf::zeroed())
            })
            .collect();
        let t0 = clock.now();
        let results = dual.do_batch(&mut batch);
        assert!(results.iter().all(std::result::Result::is_ok));
        clock.now() - t0
    };
    let serial = elapsed(false);
    let overlapped = elapsed(true);
    assert!(
        overlapped.as_nanos() * 10 <= serial.as_nanos() * 6,
        "overlapped {overlapped} vs serial {serial}: worse than 0.6x"
    );
}

#[test]
fn crash_with_parked_pages_recovers_clean() {
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let root = fs.root_dir();
    // A bystander file, fully on the medium.
    let safe = dir::create_named_file(&mut fs, root, "safe.dat").unwrap();
    fs.write_file(safe, &vec![0x11u8; 3000]).unwrap();
    // Overwrite an 8-page file through a stream and crash with pages
    // parked: after 4.02 pages, page 1 has been drained (first refill
    // batch), pages 2..4 sit in the write-behind buffer, page 5 is dirty
    // in the stream buffer — none of those four are on the medium.
    let f = consecutive_file(&mut fs, "victim.dat", 8);
    let mut s = DiskByteStream::open(&mut fs, f).unwrap();
    for _ in 0..(4 * PAGE + 10) {
        s.put_byte(&mut fs, 0x77).unwrap();
    }
    let disk = fs.crash();
    let (mut fs, _report) = Scavenger::rebuild(disk).unwrap();

    let root = fs.root_dir();
    let safe = dir::lookup(&mut fs, root, "safe.dat").unwrap().unwrap();
    assert_eq!(fs.read_file(safe).unwrap(), vec![0x11u8; 3000]);
    let f = dir::lookup(&mut fs, root, "victim.dat").unwrap().unwrap();
    let bytes = fs.read_file(f).unwrap();
    // The file's structure is intact: all 8 pages, correctly linked.
    assert_eq!(bytes.len(), 8 * PAGE);
    // Everything drained survives; everything parked shows its old
    // contents — delayed-write loses recent data, never consistency.
    assert_eq!(&bytes[..PAGE], &[0x77u8; PAGE][..], "drained page lost");
    assert_eq!(
        &bytes[PAGE..2 * PAGE],
        &[0xA5u8; PAGE][..],
        "parked page should hold its pre-crash contents"
    );
    // And the rebuilt system still allocates and works (§3.5).
    let f2 = dir::create_named_file(&mut fs, root, "after.dat").unwrap();
    fs.write_file(f2, b"still alive").unwrap();
    assert_eq!(fs.read_file(f2).unwrap(), b"still alive");
}

#[test]
fn a_second_reader_never_sees_stale_data_after_a_drain() {
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let f = consecutive_file(&mut fs, "mix.dat", 8);
    // A reader warms its readahead buffer on the old contents.
    let mut r = DiskByteStream::open(&mut fs, f).unwrap();
    let mut first = vec![0u8; 2 * PAGE];
    assert_eq!(r.read_bytes(&mut fs, &mut first).unwrap(), 2 * PAGE);
    // A writer overwrites the first five pages, draining in batches.
    let mut w = DiskByteStream::open(&mut fs, f).unwrap();
    w.write_bytes(&mut fs, &vec![0x99u8; 5 * PAGE]).unwrap();
    w.flush(&mut fs).unwrap();
    w.close(&mut fs).unwrap();
    // The reader's remaining pages must all be fresh: the drain bumped
    // the write epoch, which voids the reader's prefetched copies.
    let mut rest = vec![0u8; 6 * PAGE];
    assert_eq!(r.read_bytes(&mut fs, &mut rest).unwrap(), 6 * PAGE);
    assert_eq!(&rest[..3 * PAGE], &vec![0x99u8; 3 * PAGE][..]);
    assert_eq!(&rest[3 * PAGE..], &vec![0xA5u8; 3 * PAGE][..]);
    r.close(&mut fs).unwrap();

    // And a check that the read was not somehow served stale: the file
    // system's own view of those pages agrees byte for byte.
    let want = fs.read_file(f).unwrap();
    assert_eq!(rest, &want[2 * PAGE..]);
}
