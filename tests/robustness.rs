//! The robustness campaign (experiment E8's test twin).
//!
//! The paper's claim: label checking makes accidental overwriting "quite
//! unlikely" and the Scavenger permits "full automatic recovery after a
//! crash" (§3.3, §6). These tests throw seeded random damage at live file
//! systems and verify the two invariants that matter:
//!
//! 1. **No silent corruption** — a file that the damage did not touch is
//!    byte-identical after recovery;
//! 2. **No lost space** — after scavenging, free + live + bad = all, and
//!    allocation works.

use alto::disk::FaultKind;
use alto::prelude::*;
use alto::sim::SplitMix64;
use std::collections::BTreeMap;

/// Builds a populated file system and returns the contents written.
fn populated(
    seed: u64,
    files: usize,
) -> (FileSystem<DiskDrive>, BTreeMap<String, Vec<u8>>, SimClock) {
    let clock = SimClock::new();
    let drive = DiskDrive::with_formatted_pack(clock.clone(), Trace::new(), DiskModel::Diablo31, 1);
    let mut fs = FileSystem::format(drive).unwrap();
    let root = fs.root_dir();
    let mut rng = SplitMix64::new(seed);
    let mut contents = BTreeMap::new();
    for i in 0..files {
        let name = format!("file-{i:02}.dat");
        let len = (rng.next_below(6000) + 10) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u16() as u8).collect();
        let f = dir::create_named_file(&mut fs, root, &name).unwrap();
        fs.write_file(f, &bytes).unwrap();
        contents.insert(name, bytes);
    }
    (fs, contents, clock)
}

/// Which files does a set of damaged sectors touch? (By reading labels
/// straight off the pack: the ground truth.)
fn files_touching(fs: &FileSystem<DiskDrive>, sectors: &[DiskAddress]) -> Vec<u32> {
    let pack = fs.disk().pack().unwrap();
    sectors
        .iter()
        .filter_map(|da| {
            let label = pack.sector(*da)?.decoded_label();
            if label.is_in_use() {
                Some(alto::fs::names::Fv::from_label(&label).serial.number())
            } else {
                None
            }
        })
        .collect()
}

#[test]
fn random_label_smashes_lose_only_the_files_hit() {
    for seed in [1u64, 2, 3] {
        let (mut fs, contents, _clock) = populated(seed, 12);
        let mut rng = SplitMix64::new(seed * 977);

        // Smash 5 random labels on the medium.
        let total = fs.descriptor().bitmap.len();
        let mut smashed = Vec::new();
        for _ in 0..5 {
            let da = DiskAddress(rng.next_below(total as u64) as u16);
            smashed.push(da);
        }
        let hit_serials = files_touching(&fs, &smashed);
        for da in &smashed {
            let pack = fs.disk_mut().pack_mut().unwrap();
            let sector = pack.sector_mut(*da).unwrap();
            for w in &mut sector.label {
                *w ^= rng.next_u16() | 1;
            }
        }

        let disk = fs.crash();
        let (mut fs, _report) = Scavenger::rebuild(disk).unwrap();

        // Every file whose pages were NOT hit is byte-identical.
        let root = fs.root_dir();
        for (name, want) in &contents {
            let found = dir::lookup(&mut fs, root, name).unwrap();
            let serial = found.map(|f| f.fv.serial.number());
            let was_hit = serial.is_none_or(|s| hit_serials.contains(&s));
            if let Some(f) = found {
                let got = fs.read_file(f);
                if !was_hit {
                    assert_eq!(got.unwrap(), *want, "{name} (seed {seed}) corrupted");
                }
            } else {
                // Lost entirely: only acceptable if the damage hit it —
                // specifically its leader. (Conservative: any hit counts.)
                assert!(
                    !hit_serials.is_empty(),
                    "{name} lost without any damage (seed {seed})"
                );
            }
        }

        // The system still allocates and works.
        let root = fs.root_dir();
        let f = dir::create_named_file(&mut fs, root, "after.dat").unwrap();
        fs.write_file(f, b"still alive").unwrap();
        assert_eq!(fs.read_file(f).unwrap(), b"still alive");
    }
}

#[test]
fn torn_and_dropped_writes_never_corrupt_other_files() {
    for seed in [11u64, 12] {
        let (mut fs, contents, _clock) = populated(seed, 8);
        let mut rng = SplitMix64::new(seed * 31);

        // Rewrite one file with injected write faults under it.
        let root = fs.root_dir();
        let victim_name = "file-03.dat";
        let victim = dir::lookup(&mut fs, root, victim_name).unwrap().unwrap();
        // Arm faults on several of the victim's sectors.
        let mut pn = victim.leader_page();
        let mut victim_sectors = vec![pn.da];
        loop {
            let (label, _) = fs.read_page(pn).unwrap();
            if label.next.is_nil() {
                break;
            }
            pn = alto::fs::names::PageName::new(victim.fv, pn.page + 1, label.next);
            victim_sectors.push(pn.da);
        }
        for da in victim_sectors.iter().skip(1).take(3) {
            let kind = if rng.chance(1, 2) {
                FaultKind::TornWrite {
                    words_written: rng.next_below(256) as usize,
                }
            } else {
                FaultKind::DropWrite
            };
            fs.disk_mut().injector_mut().arm(*da, kind);
        }
        let new_bytes: Vec<u8> = (0..4000u32).map(|_| rng.next_u16() as u8).collect();
        let _ = fs.write_file(victim, &new_bytes); // may or may not "succeed"

        let disk = fs.crash();
        let (mut fs, _report) = Scavenger::rebuild(disk).unwrap();
        let root = fs.root_dir();
        for (name, want) in &contents {
            if name == victim_name {
                continue; // the victim's data is fair game
            }
            let f = dir::lookup(&mut fs, root, name).unwrap().expect(name);
            assert_eq!(fs.read_file(f).unwrap(), *want, "{name} (seed {seed})");
        }
        // The victim is structurally sound (readable without errors).
        let v = dir::lookup(&mut fs, root, victim_name).unwrap().unwrap();
        fs.read_file(v).unwrap();
    }
}

#[test]
fn wild_writes_bounce_off_the_label_check() {
    // A "wild program" writes through stale hints at every sector on the
    // disk; the label discipline must reject every single attempt aimed at
    // a sector that is not the named page.
    let (mut fs, contents, _clock) = populated(99, 6);
    let bogus_fv = alto::fs::names::Fv::new(alto::fs::names::SerialNumber::new(0x3FFF, false), 1);
    let total = fs.descriptor().bitmap.len() as u16;
    let mut rejected = 0u32;
    for da in (0..total).step_by(7) {
        let pn = alto::fs::names::PageName::new(bogus_fv, 1, DiskAddress(da));
        match fs.write_page(pn, &[0xDEAD; 256]) {
            Err(_) => rejected += 1,
            Ok(_) => panic!("a wild write landed at {da}"),
        }
    }
    assert!(rejected > 600);
    // Nothing was harmed — no scavenge needed.
    let root = fs.root_dir();
    for (name, want) in &contents {
        let f = dir::lookup(&mut fs, root, name).unwrap().unwrap();
        assert_eq!(fs.read_file(f).unwrap(), *want, "{name}");
    }
}

#[test]
fn scavenging_twice_is_a_fixed_point() {
    let (mut fs, contents, _clock) = populated(55, 10);
    // Some damage.
    let root = fs.root_dir();
    dir::remove(&mut fs, root, "file-02.dat").unwrap();
    {
        let pack = fs.disk_mut().pack_mut().unwrap();
        let sector = pack.sector_mut(DiskAddress(700)).unwrap();
        sector.label = [0x4141; 7]; // implausible garbage
    }
    let disk = fs.crash();
    let (fs, first) = Scavenger::rebuild(disk).unwrap();
    let disk = fs.unmount().unwrap();
    let (mut fs, second) = Scavenger::rebuild(disk).unwrap();
    // The second run finds nothing left to fix.
    assert_eq!(second.links_repaired, 0);
    assert_eq!(second.entries_dropped, 0);
    assert_eq!(second.entries_fixed, 0);
    assert_eq!(second.orphans_adopted, 0);
    assert_eq!(second.headless_pages_freed, 0);
    assert_eq!(second.files, first.files);
    // All content is still present (file-02 came back as an orphan).
    let root = fs.root_dir();
    for (name, want) in &contents {
        let f = dir::lookup(&mut fs, root, name).unwrap().expect(name);
        assert_eq!(fs.read_file(f).unwrap(), *want);
    }
}

/// Runs a seeded create/write/read/delete workload, optionally under a
/// transient-fault campaign, and returns the file system, the model of
/// what the caller believes is on disk, and the drive's counters.
fn campaign_workload(
    campaign: bool,
) -> (
    FileSystem<DiskDrive>,
    BTreeMap<String, Vec<u8>>,
    alto::disk::DriveStats,
) {
    let clock = SimClock::new();
    let drive = DiskDrive::with_formatted_pack(clock.clone(), Trace::new(), DiskModel::Diablo31, 1);
    let mut fs = FileSystem::format(drive).unwrap();
    if campaign {
        fs.disk_mut().injector_mut().set_campaign(0xC0FFEE, 1, 1000);
    }
    let root = fs.root_dir();
    let mut rng = SplitMix64::new(4242);
    let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    let names: Vec<String> = (0..5).map(|i| format!("c-{i}.dat")).collect();
    for _ in 0..80 {
        let name = &names[rng.next_below(5) as usize];
        match rng.next_below(4) {
            0 | 1 => {
                let len = (rng.next_below(4000) + 1) as usize;
                let bytes: Vec<u8> = (0..len).map(|_| rng.next_u16() as u8).collect();
                let f = match dir::lookup(&mut fs, root, name).unwrap() {
                    Some(f) => f,
                    None => dir::create_named_file(&mut fs, root, name).unwrap(),
                };
                fs.write_file(f, &bytes).unwrap();
                model.insert(name.clone(), bytes);
            }
            2 => {
                if let Some(f) = dir::lookup(&mut fs, root, name).unwrap() {
                    assert_eq!(fs.read_file(f).unwrap(), model[name], "{name} corrupted");
                }
            }
            _ => {
                if dir::lookup(&mut fs, root, name).unwrap().is_some() {
                    dir::remove(&mut fs, root, name).unwrap();
                    model.remove(name);
                }
            }
        }
    }
    let stats = fs.disk().io_stats();
    (fs, model, stats)
}

#[test]
fn transient_campaign_recovers_invisibly_with_zero_divergence() {
    // Every operation above `unwrap()`s: a campaign at a 1e-3 per-op fault
    // rate must be invisible to the caller — bounded retry absorbs it all.
    let (mut clean_fs, clean_model, clean_stats) = campaign_workload(false);
    let (mut fs, model, stats) = campaign_workload(true);
    assert_eq!(clean_stats.soft_errors, 0);
    assert!(stats.soft_errors > 0, "the campaign never fired");
    assert!(stats.recovered > 0);
    assert_eq!(stats.hard_failures, 0, "a transient escalated");
    let episodes = stats.recovered + stats.hard_failures;
    assert!(
        stats.recovered as f64 / episodes as f64 >= 0.99,
        "recovered {} of {episodes} fault episodes",
        stats.recovered
    );
    // Zero divergence: the faulty run ends with byte-identical contents.
    assert_eq!(model, clean_model, "the runs diverged in surviving files");
    let root = fs.root_dir();
    let clean_root = clean_fs.root_dir();
    for (name, want) in &model {
        let f = dir::lookup(&mut fs, root, name).unwrap().expect(name);
        assert_eq!(fs.read_file(f).unwrap(), *want, "{name} diverged");
        let cf = dir::lookup(&mut clean_fs, clean_root, name)
            .unwrap()
            .expect(name);
        assert_eq!(clean_fs.read_file(cf).unwrap(), *want, "{name} (clean)");
    }
}

#[test]
fn retries_zero_surfaces_the_same_campaign() {
    // The ablation: with the retry budget at zero, the very faults the
    // previous test absorbed invisibly now reach the caller as errors.
    let clock = SimClock::new();
    let drive = DiskDrive::with_formatted_pack(clock.clone(), Trace::new(), DiskModel::Diablo31, 1);
    let mut fs = FileSystem::format(drive).unwrap();
    fs.disk_mut().set_retries(0);
    fs.disk_mut().injector_mut().set_campaign(0xC0FFEE, 1, 1000);
    let root = fs.root_dir();
    let mut rng = SplitMix64::new(4242);
    let mut surfaced = 0u32;
    for i in 0..80 {
        let name = format!("a-{}.dat", i % 5);
        let f = match dir::lookup(&mut fs, root, &name) {
            Ok(Some(f)) => f,
            Ok(None) => match dir::create_named_file(&mut fs, root, &name) {
                Ok(f) => f,
                Err(_) => {
                    surfaced += 1;
                    continue;
                }
            },
            Err(_) => {
                surfaced += 1;
                continue;
            }
        };
        let len = (rng.next_below(4000) + 1) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u16() as u8).collect();
        match fs.write_file(f, &bytes) {
            Err(_) => surfaced += 1,
            Ok(()) => {
                if fs.read_file(f).is_err() {
                    surfaced += 1;
                }
            }
        }
    }
    let stats = fs.disk().io_stats();
    assert!(stats.soft_errors > 0, "the campaign never fired");
    assert_eq!(stats.retries, 0, "retries happened despite a zero budget");
    assert_eq!(stats.recovered, 0);
    assert!(stats.hard_failures > 0);
    assert!(surfaced > 0, "no fault reached the caller");
}

#[test]
fn crash_during_retry_is_recovered_by_the_scavenger() {
    let (mut fs, contents, _clock) = populated(123, 8);
    let root = fs.root_dir();
    let victim_name = "file-04.dat";
    let victim = dir::lookup(&mut fs, root, victim_name).unwrap().unwrap();
    let (leader_label, _) = fs.read_page(victim.leader_page()).unwrap();
    let page1_da = leader_label.next;

    // A persistent not-ready fault on the victim's first data page: the
    // rewrite exhausts its retry budget mid-file and surfaces a hard error.
    fs.disk_mut()
        .injector_mut()
        .arm(page1_da, FaultKind::NotReady { attempts: 1000 });
    let new_bytes: Vec<u8> = (0..3000u32).map(|i| (i % 251) as u8).collect();
    assert!(fs.write_file(victim, &new_bytes).is_err());
    let stats = fs.disk().io_stats();
    assert!(
        stats.retries >= 3,
        "the budget was not spent before escalating"
    );
    assert!(stats.hard_failures >= 1);

    // The machine crashes while the file is half-rewritten; by reboot the
    // transient condition has cleared.
    fs.disk_mut().injector_mut().disarm(page1_da);
    let disk = fs.crash();
    let (mut fs, _report) = Scavenger::rebuild(disk).unwrap();

    // Every other file survives byte-identical; the victim is structurally
    // sound (readable without errors), its data fair game.
    let root = fs.root_dir();
    for (name, want) in &contents {
        if name == victim_name {
            continue;
        }
        let f = dir::lookup(&mut fs, root, name).unwrap().expect(name);
        assert_eq!(fs.read_file(f).unwrap(), *want, "{name}");
    }
    if let Some(v) = dir::lookup(&mut fs, root, victim_name).unwrap() {
        fs.read_file(v).unwrap();
    }
}

#[test]
fn page_accounting_balances_after_recovery() {
    let (mut fs, _contents, _clock) = populated(77, 10);
    // Damage three sectors irrecoverably.
    for da in [500u16, 1500, 2500] {
        fs.disk_mut().pack_mut().unwrap().damage(DiskAddress(da));
    }
    let disk = fs.crash();
    let (fs, report) = Scavenger::rebuild(disk).unwrap();
    let total = fs.descriptor().shape.sector_count();
    // free + busy = total (from the rebuilt map).
    assert_eq!(fs.descriptor().bitmap.free_count(), report.free_pages);
    let busy = total - fs.descriptor().bitmap.free_count();
    // Busy covers: live pages + bad pages + reserved (boot DA0, and the
    // rebuilt descriptor file is counted in live pages via its labels).
    let (free_census, used_census, bad_census) = fs.disk().pack().unwrap().label_census();
    assert_eq!(
        free_census as u32 + used_census as u32 + bad_census as u32,
        total
    );
    assert_eq!(report.bad_pages as usize, bad_census);
    // Every label-free page is map-free except the reserved boot page.
    assert!(busy >= used_census as u32 + bad_census as u32);
    assert!(free_census as u32 >= report.free_pages);
}
