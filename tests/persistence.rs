//! Packs are removable media: images survive across drives, machines and
//! host processes, and the same software drives different disk models.

use alto::prelude::*;

/// Write files, serialize the pack, deserialize into a different drive on
/// a different simulated machine: everything is there.
#[test]
fn pack_image_round_trip_across_machines() {
    let clock = SimClock::new();
    let drive = DiskDrive::with_formatted_pack(clock, Trace::new(), DiskModel::Diablo31, 7);
    let mut fs = FileSystem::format(drive).unwrap();
    let root = fs.root_dir();
    let f = dir::create_named_file(&mut fs, root, "portable.txt").unwrap();
    fs.write_file(f, b"travels well").unwrap();
    let mut drive = fs.unmount().unwrap();
    let pack = drive.unload_pack().unwrap();

    // Serialize / deserialize (as if carried to another Alto).
    let image = pack.to_image();
    let pack2 = DiskPack::from_image(&image).unwrap();
    assert_eq!(pack2.pack_number(), 7);

    let clock2 = SimClock::new();
    let mut drive2 = DiskDrive::new(clock2, Trace::new());
    drive2.load_pack(pack2);
    let mut fs2 = FileSystem::mount(drive2).unwrap();
    let root2 = fs2.root_dir();
    let g = dir::lookup(&mut fs2, root2, "portable.txt")
        .unwrap()
        .unwrap();
    assert_eq!(fs2.read_file(g).unwrap(), b"travels well");
}

/// Pack images survive an actual trip through the host file system.
#[test]
fn pack_image_file_round_trip() {
    let dir_path = std::env::temp_dir().join("alto-persistence-test");
    std::fs::create_dir_all(&dir_path).unwrap();
    let path = dir_path.join("test-pack.img");

    let clock = SimClock::new();
    let drive = DiskDrive::with_formatted_pack(clock, Trace::new(), DiskModel::Diablo31, 3);
    let mut fs = FileSystem::format(drive).unwrap();
    let root = fs.root_dir();
    let f = dir::create_named_file(&mut fs, root, "saved.dat").unwrap();
    fs.write_file(f, &vec![0x5A; 5000]).unwrap();
    let mut drive = fs.unmount().unwrap();
    drive.unload_pack().unwrap().save(&path).unwrap();

    let pack = DiskPack::load(&path).unwrap();
    let mut drive = DiskDrive::new(SimClock::new(), Trace::new());
    drive.load_pack(pack);
    let mut fs = FileSystem::mount(drive).unwrap();
    let root = fs.root_dir();
    let g = dir::lookup(&mut fs, root, "saved.dat").unwrap().unwrap();
    assert_eq!(fs.read_file(g).unwrap(), vec![0x5A; 5000]);
    std::fs::remove_file(&path).ok();
}

/// The disk shape is recorded in the descriptor: the same file system
/// software runs on the bigger, faster Trident.
#[test]
fn trident_disk_works_with_the_standard_software() {
    let clock = SimClock::new();
    let drive = DiskDrive::with_formatted_pack(clock.clone(), Trace::new(), DiskModel::Trident, 9);
    let mut fs = FileSystem::format(drive).unwrap();
    assert_eq!(fs.descriptor().shape, DiskModel::Trident.geometry());
    assert!(fs.descriptor().bitmap.len() > 9000);

    let root = fs.root_dir();
    let f = dir::create_named_file(&mut fs, root, "big-disk.dat").unwrap();
    let bytes: Vec<u8> = (0..20_000u32).map(|i| (i % 241) as u8).collect();
    fs.write_file(f, &bytes).unwrap();
    assert_eq!(fs.read_file(f).unwrap(), bytes);

    // Remount and scavenge on the Trident too.
    let disk = fs.unmount().unwrap();
    let (mut fs, report) = Scavenger::rebuild(disk).unwrap();
    assert_eq!(
        report.sectors_scanned,
        DiskModel::Trident.geometry().sector_count()
    );
    let root = fs.root_dir();
    assert!(dir::lookup(&mut fs, root, "big-disk.dat")
        .unwrap()
        .is_some());
}

/// The Trident really is about twice as fast at streaming.
#[test]
fn trident_streams_about_twice_as_fast() {
    let mut times = Vec::new();
    for model in [DiskModel::Diablo31, DiskModel::Trident] {
        let clock = SimClock::new();
        let drive = DiskDrive::with_formatted_pack(clock.clone(), Trace::new(), model, 1);
        let mut fs = FileSystem::format(drive).unwrap();
        let root = fs.root_dir();
        let f = dir::create_named_file(&mut fs, root, "stream.dat").unwrap();
        let bytes = vec![1u8; 50_000];
        fs.write_file(f, &bytes).unwrap();
        let t0 = clock.now();
        fs.read_file(f).unwrap();
        times.push((clock.now() - t0).as_nanos() as f64);
    }
    let ratio = times[0] / times[1];
    assert!((1.5..2.6).contains(&ratio), "Diablo/Trident ratio {ratio}");
}

/// Cross-drive pack swap: take the pack out of one drive mid-session and
/// put it in another; labels make the files follow the medium.
#[test]
fn removable_pack_moves_between_drives() {
    let clock = SimClock::new();
    let trace = Trace::new();
    let mut drive_a =
        DiskDrive::with_formatted_pack(clock.clone(), trace.clone(), DiskModel::Diablo31, 11);
    let mut drive_b = DiskDrive::new(clock.clone(), trace);

    // Build a file system on drive A.
    let mut fs = FileSystem::format(drive_a).unwrap();
    let root = fs.root_dir();
    let f = dir::create_named_file(&mut fs, root, "nomad.txt").unwrap();
    fs.write_file(f, b"follows the pack").unwrap();
    drive_a = fs.unmount().unwrap();

    // Move the pack.
    let pack = drive_a.unload_pack().unwrap();
    drive_b.load_pack(pack);
    let mut fs = FileSystem::mount(drive_b).unwrap();
    let root = fs.root_dir();
    let g = dir::lookup(&mut fs, root, "nomad.txt").unwrap().unwrap();
    assert_eq!(fs.read_file(g).unwrap(), b"follows the pack");

    // Drive A is now empty.
    let mut buf = alto::disk::SectorBuf::zeroed();
    assert!(drive_a
        .do_op(DiskAddress(0), alto::disk::SectorOp::READ_ALL, &mut buf)
        .is_err());
}

/// A whole installed OS — boot file included — survives the pack image.
#[test]
fn installed_os_survives_image_round_trip() {
    let mut os = alto::fresh_alto();
    os.machine.ac[0] = 0xF00D;
    os.install_boot_file().unwrap();
    let clock = os.machine.clock().clone();
    let mut drive = os.fs.unmount().unwrap();
    let image = drive.unload_pack().unwrap().to_image();

    // "Another Alto": fresh machine, fresh drive, same pack image.
    let machine = Machine::new(clock.clone(), Trace::new());
    let mut drive2 = DiskDrive::new(clock, Trace::new());
    drive2.load_pack(DiskPack::from_image(&image).unwrap());
    let fs = FileSystem::mount(drive2).unwrap();
    let mut os2 = AltoOs::assemble(machine, fs);
    os2.bootstrap().unwrap();
    assert_eq!(os2.machine.ac[0], 0xF00D);
}
