//! Timing regression tests: the paper's headline numbers, asserted.
//!
//! `EXPERIMENTS.md` records the exact values; these tests pin the *bands*
//! so a change to the device models or the I/O paths that silently breaks
//! a reproduced claim fails `cargo test`, not just the write-up.

use alto::prelude::*;
use alto_bench::{consecutive_file, filled_fs, fresh_fs, scatter_file};

/// E1 — 64K words through the file system in "about one second".
#[test]
fn e1_band_64k_words_in_about_a_second() {
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let clock = fs.disk().clock().clone();
    let f = consecutive_file(&mut fs, "rate.dat", 256);
    let t0 = clock.now();
    fs.read_file(f).unwrap();
    let dt = (clock.now() - t0).as_secs_f64();
    assert!((0.8..1.8).contains(&dt), "64K words took {dt:.2} s");
}

/// E2 — scavenging a 2.5 MB disk takes tens of seconds ("about a minute",
/// §3.5). Two sweeps: the full label scan (flat) plus the link-check pass
/// over live sectors (grows mildly with utilization).
#[test]
fn e2_band_scavenge_about_a_minute() {
    let mut times = Vec::new();
    for percent in [10u32, 90] {
        let fs = filled_fs(percent, 42);
        let disk = fs.unmount().unwrap();
        let (_, report) = Scavenger::rebuild(disk).unwrap();
        let secs = report.elapsed.as_secs_f64();
        assert!((15.0..120.0).contains(&secs), "{percent}%: {secs:.1} s");
        times.push(secs);
    }
    // Sub-linear in utilization: the scan is flat; only the link-check
    // pass grows, and it streams.
    assert!(
        times[1] / times[0] < 3.0,
        "90% took {:.1}x the 10% scavenge",
        times[1] / times[0]
    );
}

/// E3 — compaction buys an order of magnitude on scattered files.
#[test]
fn e3_band_compaction_speedup_order_of_magnitude() {
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let clock = fs.disk().clock().clone();
    let f = consecutive_file(&mut fs, "doc.dat", 40);
    scatter_file(&mut fs, f, 77);
    let t0 = clock.now();
    fs.read_file(f).unwrap();
    let scattered = clock.now() - t0;
    Compactor::run(&mut fs).unwrap();
    let root = fs.root_dir();
    let f = dir::lookup(&mut fs, root, "doc.dat").unwrap().unwrap();
    let t0 = clock.now();
    fs.read_file(f).unwrap();
    let compacted = clock.now() - t0;
    let speedup = scattered.as_nanos() as f64 / compacted.as_nanos() as f64;
    assert!(speedup > 8.0, "speedup only {speedup:.1}x");
}

/// E4 — raw page allocate/free pay the §3.3 label discipline: the check
/// and the write are separate commands, and each command's set-up time
/// makes it miss the next slot, so every allocate/free costs about two
/// revolutions. In-place overwrites, which chain, cost far less per page.
#[test]
fn e4_band_label_discipline_revolutions() {
    use alto::fs::names::{Fv, PageName, SerialNumber};
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let clock = fs.disk().clock().clone();
    let rev = fs.disk().timing().unwrap().revolution().as_nanos() as f64;
    let fv = Fv::new(SerialNumber::new(0x2FFF, false), 1);
    let n = 32u64;

    let t0 = clock.now();
    let mut pages = Vec::new();
    for i in 0..n as u16 {
        let label = Label {
            fid: fv.serial.words(),
            version: 1,
            page_number: i,
            length: 512,
            next: DiskAddress::NIL,
            prev: DiskAddress::NIL,
        };
        pages.push((i, fs.allocate_page(None, label, &[0; 256]).unwrap()));
    }
    let alloc_revs = (clock.now() - t0).as_nanos() as f64 / rev / n as f64;
    assert!(
        (1.9..2.6).contains(&alloc_revs),
        "allocate: {alloc_revs:.2} revs/page"
    );

    let t0 = clock.now();
    for (i, da) in &pages {
        fs.free_page(PageName::new(fv, *i, *da)).unwrap();
    }
    let free_revs = (clock.now() - t0).as_nanos() as f64 / rev / n as f64;
    assert!(
        (1.9..2.6).contains(&free_revs),
        "free: {free_revs:.2} revs/page"
    );

    // Ordinary overwrites: well under a revolution per page.
    let f = consecutive_file(&mut fs, "w.dat", 32);
    let t0 = clock.now();
    fs.write_file(f, &vec![9u8; 32 * 512]).unwrap();
    let write_revs = (clock.now() - t0).as_nanos() as f64 / rev / n as f64;
    assert!(write_revs < 0.5, "overwrite: {write_revs:.2} revs/page");
}

/// E6 — a world swap streams in about a second once the state file exists.
#[test]
fn e6_band_world_swap_about_a_second() {
    let mut os = alto::fresh_alto();
    let clock = os.machine.clock().clone();
    let file = os.create_state_file("W.state").unwrap();
    let t0 = clock.now();
    os.out_load(file).unwrap();
    let out = (clock.now() - t0).as_secs_f64();
    let t0 = clock.now();
    os.in_load(file, &[0; MESSAGE_WORDS]).unwrap();
    let inl = (clock.now() - t0).as_secs_f64();
    assert!((0.7..2.5).contains(&out), "OutLoad {out:.2} s");
    assert!((0.7..2.5).contains(&inl), "InLoad {inl:.2} s");
}

/// E10 adjunct — the network is fast relative to the disk: a page-sized
/// packet beats one disk revolution.
#[test]
fn network_page_beats_a_disk_revolution() {
    let clock = SimClock::new();
    let mut ether = Ether::new(clock.clone(), Trace::new());
    ether.attach(1).unwrap();
    ether.attach(2).unwrap();
    let words = vec![0u16; 256];
    let t0 = clock.now();
    alto::net::receive_file(&mut ether, 1, 2, 0x30, 0x31, &words).unwrap();
    let transfer = clock.now() - t0;
    let rev = alto::disk::TimingModel::for_model(DiskModel::Diablo31).revolution();
    assert!(
        transfer < rev,
        "page transfer {transfer} vs revolution {rev}"
    );
}

/// Invariants of the rotational timing model the scheduler builds on.
#[test]
fn disk_timing_model_invariants() {
    use alto::disk::TimingModel;
    for model in [DiskModel::Diablo31, DiskModel::Trident] {
        let t = TimingModel::for_model(model);
        // Seek cost is monotone in distance, and staying put is free.
        assert_eq!(t.seek(0), SimTime::ZERO);
        let mut last = SimTime::ZERO;
        for d in 1..=202 {
            let s = t.seek(d);
            assert!(s >= last, "seek({d}) < seek({})", d - 1);
            last = s;
        }
        // Rotational position is a pure function of time. At a slot
        // boundary, the slot under the head needs no wait; from anywhere,
        // the wait never reaches a full revolution and always lands
        // exactly on the target slot's boundary.
        for k in [0u64, 1, 5, 23, 144] {
            let now = t.sector_time.scaled(k);
            assert_eq!(t.rotational_wait(now, t.slot_at(now)), SimTime::ZERO);
        }
        for ns in [0u64, 1, 12_345_678, 99_999_999] {
            let now = SimTime::from_nanos(ns);
            for target in 0..12u16.min(t.sectors_per_track) {
                let wait = t.rotational_wait(now, target);
                assert!(wait < t.revolution());
                let arrival = now + wait;
                assert_eq!(t.slot_at(arrival), target);
                assert!(arrival.as_nanos().is_multiple_of(t.sector_time.as_nanos()));
            }
        }
    }
}

/// A batched track read streams in about a revolution; the same sectors
/// issued one command at a time pay a revolution *each* — the §4 chaining
/// claim, end to end through the drive.
#[test]
fn chained_track_read_beats_unscheduled_by_an_order() {
    use alto::disk::{BatchRequest, SectorBuf, SectorOp};
    let n = 12u64; // one full track
    let batched = {
        let mut d =
            DiskDrive::with_formatted_pack(SimClock::new(), Trace::new(), DiskModel::Diablo31, 1);
        let t0 = d.clock().now();
        let mut batch: Vec<BatchRequest> = (0..n as u16)
            .map(|i| BatchRequest::new(DiskAddress(i), SectorOp::READ_ALL, SectorBuf::zeroed()))
            .collect();
        for r in d.do_batch(&mut batch) {
            r.unwrap();
        }
        d.clock().now() - t0
    };
    let unscheduled = {
        let mut d =
            DiskDrive::with_formatted_pack(SimClock::new(), Trace::new(), DiskModel::Diablo31, 1);
        let t0 = d.clock().now();
        for i in 0..n as u16 {
            let mut buf = SectorBuf::zeroed();
            d.do_op(DiskAddress(i), SectorOp::READ_ALL, &mut buf)
                .unwrap();
        }
        d.clock().now() - t0
    };
    let t = alto::disk::TimingModel::for_model(DiskModel::Diablo31);
    assert!(
        batched < t.revolution().scaled(2),
        "batched track read took {batched}"
    );
    assert!(
        unscheduled >= t.revolution().scaled(n),
        "unscheduled track read took only {unscheduled}"
    );
}

/// The CPU model: 800 ns per memory cycle makes instruction timing exact.
#[test]
fn cpu_timing_is_exact() {
    let clock = SimClock::new();
    let mut m = Machine::new(clock.clone(), Trace::new());
    let code = alto::machine::assemble(
        "
        lda 0, k     ; 2 cycles
        add 0, 0     ; 1 cycle
        sta 0, k     ; 2 cycles
        halt         ; 1 cycle
k:      .word 3
        ",
    )
    .unwrap();
    m.load_program(0o400, &code.words).unwrap();
    let t0 = clock.now();
    m.run(100).unwrap();
    let cycles = (clock.now() - t0).as_nanos() / 800;
    assert_eq!(cycles, 6);
}
