//! Coherence and payoff tests for the in-core hint cache (§3.6).
//!
//! The cache is a bundle of *hints*: a directory name index, a leader-page
//! cache and placement-aware allocation. These tests pin the two promises
//! that make hints safe and worthwhile:
//!
//! * **coherence** — nothing cached is ever believed over the disk: writes
//!   behind the cache's back (through raw file writes or a byte stream)
//!   retire the snapshots, and every answer agrees with an uncached scan;
//! * **payoff** — a warm open-by-name beats the uncached ablation by the
//!   margin the design claims (≥ 5× in simulated time), and fresh files
//!   come out of the placement-aware allocator close enough to consecutive
//!   that no compaction pass is needed to read them fast.

use alto::prelude::*;
use alto_bench::fresh_fs;

/// Builds a root directory with `n` files named `f000..`, returning the
/// last name created.
fn populate(fs: &mut FileSystem<DiskDrive>, n: usize) -> String {
    let root = fs.root_dir();
    let mut last = String::new();
    for i in 0..n {
        last = format!("f{i:03}");
        dir::create_named_file(fs, root, &last).unwrap();
    }
    last
}

/// Acceptance: a warm open-by-name (index hit, verified against the leader
/// label, leader served from the cache) is at least 5× faster in simulated
/// time than the uncached ablation's linear scan of the same directory.
#[test]
fn warm_open_by_name_beats_uncached_ablation_5x() {
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let clock = fs.disk().clock().clone();
    let root = fs.root_dir();
    let name = populate(&mut fs, 300);

    // Warm up: one lookup verifies the entry and fills the leader cache.
    let f = dir::lookup(&mut fs, root, &name).unwrap().unwrap();

    let t0 = clock.now();
    let w = dir::lookup(&mut fs, root, &name).unwrap().unwrap();
    let leader_w = fs.open_leader(w).unwrap().1;
    let warm = clock.now() - t0;

    fs.set_hint_cache_enabled(false);
    let t0 = clock.now();
    let u = dir::lookup(&mut fs, root, &name).unwrap().unwrap();
    let leader_u = fs.open_leader(u).unwrap().1;
    let uncached = clock.now() - t0;
    fs.set_hint_cache_enabled(true);

    // Same answer either way; the cache only changes the cost.
    assert_eq!(w, f);
    assert_eq!(u, f);
    assert_eq!(leader_w.encode(), leader_u.encode());
    let ratio = uncached.as_nanos() as f64 / warm.as_nanos() as f64;
    assert!(
        ratio >= 5.0,
        "warm open only {ratio:.1}x faster ({warm} vs {uncached})"
    );
}

/// A directory rewritten *behind the directory package's back* — here
/// through a byte stream straight onto the directory file — must retire the
/// name index: the next lookup sees the on-disk truth, never the snapshot.
#[test]
fn directory_rewrite_through_a_stream_invalidates_the_index() {
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let root = fs.root_dir();
    let victim = dir::create_named_file(&mut fs, root, "victim.txt").unwrap();
    fs.write_file(victim, b"payload").unwrap();

    // Snapshot the directory bytes with the victim present, then remove the
    // entry through the package. The index now (correctly) says "gone".
    let with_victim = fs.read_file(root).unwrap();
    dir::remove(&mut fs, root, "victim.txt").unwrap();
    assert_eq!(dir::lookup(&mut fs, root, "victim.txt").unwrap(), None);

    // Resurrect the entry by streaming the old bytes over the directory
    // file — a legitimate §3.4 move (directories are ordinary files), and
    // one the cache only learns about through the disk's write epoch.
    let invalidations = fs.cache_stats().invalidations;
    let mut s = DiskByteStream::open(&mut fs, root).unwrap();
    for &b in &with_victim {
        s.put_byte(&mut fs, b).unwrap();
    }
    s.close(&mut fs).unwrap();

    assert_eq!(
        dir::lookup(&mut fs, root, "victim.txt").unwrap(),
        Some(victim),
        "lookup served the stale index, not the rewritten directory"
    );
    assert!(
        fs.cache_stats().invalidations > invalidations,
        "the stale snapshot was never retired"
    );

    // And the warm path agrees with the uncached scan afterwards.
    let warm = dir::lookup(&mut fs, root, "victim.txt").unwrap();
    fs.set_hint_cache_enabled(false);
    let cold = dir::lookup(&mut fs, root, "victim.txt").unwrap();
    assert_eq!(warm, cold);
}

/// The same staleness discipline for raw `write_file` on the directory —
/// the other behind-the-back path (no stream involved).
#[test]
fn directory_rewrite_through_write_file_invalidates_the_index() {
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let root = fs.root_dir();
    let a = dir::create_named_file(&mut fs, root, "keep.txt").unwrap();
    let bytes_with_a_only = fs.read_file(root).unwrap();
    let b = dir::create_named_file(&mut fs, root, "drop.txt").unwrap();
    assert_eq!(dir::lookup(&mut fs, root, "drop.txt").unwrap(), Some(b));

    // Roll the directory file back to the earlier contents directly.
    fs.write_file(root, &bytes_with_a_only).unwrap();
    assert_eq!(dir::lookup(&mut fs, root, "drop.txt").unwrap(), None);
    assert_eq!(dir::lookup(&mut fs, root, "keep.txt").unwrap(), Some(a));
}

/// The leader cache never serves a leader that disagrees with the disk:
/// after any rewrite, the cached copy matches an uncached read exactly.
#[test]
fn leader_cache_stays_coherent_across_rewrites() {
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let root = fs.root_dir();
    let f = dir::create_named_file(&mut fs, root, "doc.dat").unwrap();
    fs.write_file(f, &vec![1u8; 3 * 512]).unwrap();

    // Second read is a hit, and identical to the first.
    let first = fs.open_leader(f).unwrap().1;
    let hits = fs.cache_stats().leader_hits;
    let second = fs.open_leader(f).unwrap().1;
    assert!(fs.cache_stats().leader_hits > hits, "repeat open missed");
    assert_eq!(first.encode(), second.encode());

    // Grow the file: the last-page hints change on disk, and the cached
    // leader must follow.
    fs.write_file(f, &vec![2u8; 6 * 512]).unwrap();
    let cached = fs.open_leader(f).unwrap().1;
    fs.set_hint_cache_enabled(false);
    let fresh = fs.read_leader(f).unwrap();
    fs.set_hint_cache_enabled(true);
    assert_eq!(cached.encode(), fresh.encode());
    assert_eq!(cached.last_page, 6);
}

/// Acceptance: on a fragmented disk, a freshly written file placed by the
/// allocator reads back sequentially within 2× of the same file after a
/// compaction pass — locality without the compactor.
#[test]
fn fresh_write_on_fragmented_disk_reads_within_2x_of_compacted() {
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let clock = fs.disk().clock().clone();
    let root = fs.root_dir();

    // Punch 4-page holes into the front of the disk: create 30 small files
    // back to back, then delete every other one.
    for i in 0..30 {
        let f = dir::create_named_file(&mut fs, root, &format!("fill-{i:02}")).unwrap();
        fs.write_file(f, &vec![0u8; 3 * 512]).unwrap();
    }
    for i in (0..30).step_by(2) {
        let f = dir::remove(&mut fs, root, &format!("fill-{i:02}"))
            .unwrap()
            .unwrap();
        fs.delete_file(f).unwrap();
    }
    // Remount so the next-fit rotor resets: a freshly booted system is now
    // writing onto an aged disk whose front is riddled with holes.
    let mut fs = FileSystem::mount(fs.unmount().unwrap()).unwrap();
    let root = fs.root_dir();

    // A fresh 40-page file does not fit any hole: the placement-aware
    // allocator must skip the fragments and lay the data out in one run.
    let f = dir::create_named_file(&mut fs, root, "fresh.dat").unwrap();
    fs.write_file(f, &vec![7u8; 40 * 512]).unwrap();
    let t0 = clock.now();
    let fresh_bytes = fs.read_file(f).unwrap();
    let fresh = clock.now() - t0;

    Compactor::run(&mut fs).unwrap();
    let root = fs.root_dir();
    let f = dir::lookup(&mut fs, root, "fresh.dat").unwrap().unwrap();
    let t0 = clock.now();
    let compacted_bytes = fs.read_file(f).unwrap();
    let compacted = clock.now() - t0;

    assert_eq!(fresh_bytes, compacted_bytes);
    let ratio = fresh.as_nanos() as f64 / compacted.as_nanos() as f64;
    assert!(
        ratio <= 2.0,
        "fresh layout read {ratio:.2}x the compacted read ({fresh} vs {compacted})"
    );
}

/// The ablation switch really reverts to the uncached system: no counters
/// move while it is off, answers stay correct, and re-enabling works.
#[test]
fn ablation_switch_disables_counting_and_stays_correct() {
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let root = fs.root_dir();
    let f = dir::create_named_file(&mut fs, root, "a.txt").unwrap();
    dir::lookup(&mut fs, root, "a.txt").unwrap();

    fs.set_hint_cache_enabled(false);
    assert!(!fs.hint_cache_enabled());
    let frozen = fs.cache_stats();
    assert_eq!(dir::lookup(&mut fs, root, "a.txt").unwrap(), Some(f));
    assert_eq!(dir::lookup(&mut fs, root, "A.TXT").unwrap(), Some(f));
    assert_eq!(dir::lookup(&mut fs, root, "missing").unwrap(), None);
    fs.read_leader(f).unwrap();
    assert_eq!(fs.cache_stats(), frozen, "counters moved while disabled");

    fs.set_hint_cache_enabled(true);
    assert_eq!(dir::lookup(&mut fs, root, "a.txt").unwrap(), Some(f));
}

/// Cache traffic shows up in the trace: warm lookups record `fs.cache_hit`,
/// cold ones `fs.cache_miss`.
#[test]
fn cache_events_are_traced() {
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let root = fs.root_dir();
    dir::create_named_file(&mut fs, root, "t.txt").unwrap();

    let hits = fs.disk().trace().count("fs.cache_hit");
    dir::lookup(&mut fs, root, "t.txt").unwrap();
    assert!(fs.disk().trace().count("fs.cache_hit") > hits);

    // A rewrite behind the cache's back forces a miss on the next lookup.
    let bytes = fs.read_file(root).unwrap();
    fs.write_file(root, &bytes).unwrap();
    let misses = fs.disk().trace().count("fs.cache_miss");
    dir::lookup(&mut fs, root, "t.txt").unwrap();
    assert!(fs.disk().trace().count("fs.cache_miss") > misses);
}

/// The model test in `fs_model.rs` interleaves random operations; this is
/// the directed version: create, remove and re-create the *same* name and
/// check the index tracks every transition.
#[test]
fn recreate_same_name_tracks_through_the_index() {
    let mut fs = fresh_fs(DiskModel::Diablo31);
    let root = fs.root_dir();
    for round in 0..3 {
        let f = dir::create_named_file(&mut fs, root, "phoenix").unwrap();
        fs.write_file(f, format!("round {round}").as_bytes())
            .unwrap();
        assert_eq!(dir::lookup(&mut fs, root, "phoenix").unwrap(), Some(f));
        assert_eq!(
            fs.read_file(f).unwrap(),
            format!("round {round}").as_bytes()
        );
        let g = dir::remove(&mut fs, root, "phoenix").unwrap().unwrap();
        assert_eq!(g, f);
        fs.delete_file(g).unwrap();
        assert_eq!(dir::lookup(&mut fs, root, "phoenix").unwrap(), None);
    }
}
