//! # alto — An Open Operating System for a Single-User Machine
//!
//! A from-scratch Rust reproduction of Lampson & Sproull's SOSP 1979
//! paper: the Alto Operating System, on a fully simulated Alto (16-bit
//! CPU, 64K words of memory, Diablo Model 31 disks with a sector-accurate
//! timing model).
//!
//! The workspace mirrors the paper's structure:
//!
//! * [`sim`] — simulated clock, memory, tracing;
//! * [`disk`] — sectors with header/label/value parts, check semantics,
//!   seek/rotation timing, removable packs (§3.1, §3.3);
//! * [`fs`] — pages, files, leader pages, directories, hints, and the
//!   Scavenger (§3);
//! * [`zones`] — the free-storage allocator (§5);
//! * [`streams`] — OS6-style streams (§2);
//! * [`machine`] — the Nova-like CPU, assembler and machine state (§2);
//! * [`net`] — the simulated Ethernet and packet format (§1, §4);
//! * [`os`] — Junta levels, `OutLoad`/`InLoad`, the loader and the
//!   Executive (§4, §5).
//!
//! ## Quickstart
//!
//! ```
//! use alto::prelude::*;
//!
//! // One shared simulated timeline for machine and disk.
//! let clock = SimClock::new();
//! let trace = Trace::new();
//! let machine = Machine::new(clock.clone(), trace.clone());
//! let drive = DiskDrive::with_formatted_pack(clock, trace, DiskModel::Diablo31, 1);
//!
//! // Install the system and use it.
//! let mut os = AltoOs::install(machine, drive).unwrap();
//! let root = os.fs.root_dir();
//! let file = alto::fs::dir::create_named_file(&mut os.fs, root, "memo.txt").unwrap();
//! os.fs.write_file(file, b"meet me at PARC").unwrap();
//! assert_eq!(os.fs.read_file(file).unwrap(), b"meet me at PARC");
//! ```

#![forbid(unsafe_code)]

pub use alto_disk as disk;
pub use alto_fs as fs;
pub use alto_machine as machine;
pub use alto_net as net;
pub use alto_os as os;
pub use alto_sim as sim;
pub use alto_streams as streams;
pub use alto_zones as zones;

/// The most commonly used types, in one import.
pub mod prelude {
    pub use alto_disk::{Disk, DiskAddress, DiskDrive, DiskModel, DiskPack, Label};
    pub use alto_fs::{compact::Compactor, dir, FileSystem, FsError, LeaderPage, Scavenger};
    pub use alto_machine::{assemble, Machine, MachineState};
    pub use alto_net::{Ether, Packet};
    pub use alto_os::{AltoOs, OsError, MESSAGE_WORDS};
    pub use alto_sim::{SimClock, SimTime, Trace};
    pub use alto_streams::{DiskByteStream, MemoryStream, Stream};
    pub use alto_zones::{FirstFitZone, Zone};
}

/// Builds a ready-to-use OS on a freshly formatted Diablo 31 pack — the
/// setup line shared by examples, tests and benchmarks.
pub fn fresh_alto() -> os::AltoOs {
    let clock = sim::SimClock::new();
    let trace = sim::Trace::new();
    let machine = machine::Machine::new(clock.clone(), trace.clone());
    let drive = disk::DiskDrive::with_formatted_pack(clock, trace, disk::DiskModel::Diablo31, 1);
    os::AltoOs::install(machine, drive).expect("formatting a fresh pack cannot fail")
}

#[cfg(test)]
mod tests {
    #[test]
    fn fresh_alto_boots() {
        let mut os = super::fresh_alto();
        let root = os.fs.root_dir();
        assert!(alto_fs::dir::lookup(&mut os.fs, root, "SysDir")
            .unwrap()
            .is_some());
    }
}
